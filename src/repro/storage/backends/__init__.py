"""Pluggable storage backends and URL-style location resolution.

Three engines behind one interface (:class:`StorageBackend`):

========  =====================================================================
scheme    engine
========  =====================================================================
``json``  one JSON file per database (the historical format, unchanged on disk)
``sqlite``  one row per tuple; single relations load without the rest of the db
``log``   append-only JSONL journal; write-ahead durability for stream engines
========  =====================================================================

Locations are URL-ish strings resolved by :func:`resolve_backend`:

* an explicit scheme prefix always wins: ``sqlite:federation.db``;
* otherwise the ``REPRO_STORAGE`` environment variable names the
  default engine for bare paths (the CI matrix uses this to run the
  whole suite against SQLite);
* otherwise the file extension decides (``.sqlite``/``.sqlite3``/``.db``
  -> sqlite, ``.jsonl``/``.log`` -> log, anything else -> json, the
  historical default).

>>> resolve_backend("sqlite:fed.db").scheme
'sqlite'
>>> resolve_backend("restaurants.json").scheme
'json'
>>> resolve_backend("journal.jsonl").scheme
'log'
"""

from __future__ import annotations

import os

from repro.errors import SerializationError
from repro.storage.backends.base import StorageBackend
from repro.storage.backends.jsonfile import JsonBackend
from repro.storage.backends.log import LogBackend
from repro.storage.backends.sqlite import SqliteBackend

#: Environment variable naming the default scheme for bare paths.
STORAGE_ENV = "REPRO_STORAGE"

#: Registered engines by URL scheme.
SCHEMES: dict[str, type[StorageBackend]] = {
    backend.scheme: backend
    for backend in (JsonBackend, SqliteBackend, LogBackend)
}

_EXTENSIONS = {
    ".sqlite": "sqlite",
    ".sqlite3": "sqlite",
    ".db": "sqlite",
    ".jsonl": "log",
    ".log": "log",
}


def split_url(url) -> tuple[str | None, str]:
    """Split ``scheme:location`` into its parts (scheme None when bare)."""
    text = str(url)
    scheme, separator, rest = text.partition(":")
    if separator and scheme in SCHEMES:
        return scheme, rest
    return None, text


def default_scheme(location: str) -> str:
    """The scheme a bare *location* resolves to (env var, then extension)."""
    configured = os.environ.get(STORAGE_ENV)
    if configured:
        if configured not in SCHEMES:
            known = ", ".join(sorted(SCHEMES))
            raise SerializationError(
                f"{STORAGE_ENV}={configured!r} names no storage backend "
                f"(known: {known})"
            )
        return configured
    suffix = os.path.splitext(location)[1].lower()
    return _EXTENSIONS.get(suffix, "json")


def resolve_backend(url) -> StorageBackend:
    """Build the (unopened) backend a location URL names.

    Accepts an already-built backend unchanged, so every API that takes
    a URL also takes a backend instance.
    """
    if isinstance(url, StorageBackend):
        return url
    scheme, location = split_url(url)
    if scheme is None:
        scheme = default_scheme(location)
    if not location:
        raise SerializationError(f"storage URL {str(url)!r} names no path")
    return SCHEMES[scheme](location)


def open_backend(url) -> StorageBackend:
    """Resolve and open a backend (caller closes, or uses ``with``)."""
    return resolve_backend(url).open()


def open_database(url):
    """Open the database a URL names, with its backend attached.

    The backend stays open and attached -- ``db.persist()`` writes back
    through it, ``db.reload()`` refreshes from it, ``db.close()``
    releases it.  Raises :class:`SerializationError` when the location
    holds no store.

    Backends advertising ``lazy_catalog`` (SQLite) open with name stubs
    instead of parsing every relation up front; each relation loads on
    first access.  ``REPRO_LAZY_CATALOG=0`` restores the eager load.
    """
    backend = resolve_backend(url)
    if not backend.exists():
        raise SerializationError(f"no database at {backend.url()}")
    backend.open()
    try:
        lazy = (
            backend.lazy_catalog
            and os.environ.get("REPRO_LAZY_CATALOG", "").strip() != "0"
        )
        if lazy:
            from repro.storage.database import Database

            database = Database(backend.database_name())
            database._pending = set(backend.list_relations())
            database._version = max(0, backend.catalog_version())
        else:
            database = backend.load_database()
    except Exception:
        backend.close()
        raise
    database.attach(backend)
    return database


def create_database(url, name: str = "db"):
    """A fresh, empty database attached to a (possibly new) location."""
    from repro.storage.database import Database

    backend = open_backend(url)
    database = Database(name)
    database.attach(backend)
    return database


__all__ = [
    "STORAGE_ENV",
    "SCHEMES",
    "StorageBackend",
    "JsonBackend",
    "SqliteBackend",
    "LogBackend",
    "split_url",
    "default_scheme",
    "resolve_backend",
    "open_backend",
    "open_database",
    "create_database",
]
