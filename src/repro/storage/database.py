"""An in-memory database of extended relations.

:class:`Database` is the catalog the query engine resolves relation
names against, and the convenient front door for interactive use::

    db = Database("tourist_bureau")
    db.add(table_ra())
    db.add(table_rb())

    # string front end
    result = db.query("SELECT rname FROM RA WHERE speciality IS {si}")

    # fluent front end -- same plans, same cache
    result = db.rel("RA").select(attr("speciality").is_({"si"})).collect()

Both front ends run through the database's default
:class:`repro.session.Session`.  The catalog keeps a monotonically
increasing :attr:`version` so sessions can invalidate their plan/result
caches whenever a relation is added, replaced or dropped.
"""

from __future__ import annotations

import difflib

from collections.abc import Iterator
from contextlib import contextmanager

from repro.errors import CatalogError
from repro.model.relation import ExtendedRelation


def _did_you_mean(name: str, known) -> str:
    """A ``did you mean`` suffix for near-miss relation names ('' if none)."""
    matches = difflib.get_close_matches(name, list(known), n=1, cutoff=0.6)
    return f" -- did you mean {matches[0]!r}?" if matches else ""


class Database:
    """A named catalog of extended relations."""

    def __init__(self, name: str = "db"):
        self._name = str(name)
        self._relations: dict[str, ExtendedRelation] = {}
        #: Names the attached store holds but this catalog has not read
        #: yet (lazy open): materialized on first access, disjoint from
        #: ``_relations`` by construction.
        self._pending: set[str] = set()
        self._version = 0
        self._changed: dict[str, int] = {}
        self._listeners: list = []
        self._session = None
        self._batch_depth = 0
        self._batch_names: list[str] = []
        self._backend = None

    # -- persistence --------------------------------------------------------

    @classmethod
    def open(cls, url) -> "Database":
        """Open the database a storage URL names, backend attached.

        *url* is a backend location (``json:...``, ``sqlite:...``,
        ``log:...``, or a bare path resolved per
        :mod:`repro.storage.backends`); an already-built
        :class:`~repro.storage.backends.StorageBackend` is accepted
        too.  The catalog version is seeded from the backend, so
        sessions never confuse results cached against an earlier
        incarnation of the store.

        Backends that support it (``lazy_catalog``, e.g. SQLite) open
        lazily: the catalog holds name stubs and each relation's rows
        are parsed on first access, so opening a large store to query
        one relation reads one relation.  ``REPRO_LAZY_CATALOG=0``
        forces the historical eager load.
        """
        from repro.storage.backends import open_database

        return open_database(url)

    @property
    def backend(self):
        """The attached storage backend (None for in-memory databases)."""
        return self._backend

    def attach(self, backend) -> None:
        """Bind *backend* as this database's persistence engine.

        ``persist()``/``reload()`` operate through it from now on.  The
        backend must be open; an attached backend is released by
        :meth:`close`.
        """
        self._backend = backend

    def persist(self, partitions: int | None = None) -> None:
        """Write the whole catalog through the attached backend.

        With *partitions* the tuples persist in their stable hash-shard
        layout (reloading re-partitions identically).  Raises
        :class:`CatalogError` when no backend is attached.
        """
        self._require_backend().save_database(self, partitions=partitions)
        self._publish_remote_shards()

    def _publish_remote_shards(self) -> None:
        """Register the persisted relations with a locality-aware executor.

        After a full persist the catalog is the ground truth, so a
        remote executor with shard-resident workers (``publish_relation``
        hook) learns every relation's current version; in-process
        executors have no such hook and this is a no-op.
        """
        from repro.exec.executors import get_executor

        publish = getattr(get_executor(), "publish_relation", None)
        if publish is None:
            return
        for relation in self:
            publish(relation)

    def reload(self) -> frozenset:
        """Re-read the attached store, refreshing changed relations.

        Returns the names whose content actually changed (replaced,
        added or dropped).  Only those bump the catalog version, so
        session caches over untouched relations survive; afterwards the
        catalog version is synced to the backend's, keeping this
        database's sessions consistent with any other writer of the
        same store.
        """
        backend = self._require_backend()
        fresh = backend.load_database()
        touched = []
        with self.batch():
            # Sorted: drop order reaches catalog listeners and the
            # returned name set's insertion order, and must not depend
            # on set iteration order.
            stale = (set(self._relations) | self._pending) - set(fresh.names())
            for name in sorted(stale):
                self.drop(name)
                touched.append(name)
            for relation in fresh:
                if relation.name in self._pending:
                    # Never materialized, so nothing can hold a stale
                    # view of it: install silently, exactly as first
                    # access would have.
                    self._pending.discard(relation.name)
                    self._relations[relation.name] = relation
                    continue
                current = self._relations.get(relation.name)
                if current is None or current != relation:
                    self._install(relation)
                    touched.append(relation.name)
        self._version = max(self._version, backend.catalog_version())
        return frozenset(touched)

    def close(self) -> None:
        """Release the attached backend (no-op when none is attached).

        A detached database must stay fully readable, so any lazy
        stubs materialize first, while the backend can still serve
        them (callers wanting to stay lazy keep the backend attached).
        """
        if self._backend is not None:
            for name in sorted(self._pending):
                self._materialize(name)
            self._backend.close()
            self._backend = None

    def _require_backend(self):
        if self._backend is None:
            raise CatalogError(
                f"database {self._name!r} has no attached storage backend "
                f"(open it via Database.open(url) or call attach())"
            )
        return self._backend

    @property
    def name(self) -> str:
        """The database name."""
        return self._name

    @property
    def version(self) -> int:
        """Catalog version; bumped by mutations that can change the
        meaning of an existing query (replacing or dropping a relation
        -- adding a brand-new name cannot alter any cached result).

        Sessions compare this against the version they last planned
        for and drop their caches on mismatch.
        """
        return self._version

    def add(self, relation: ExtendedRelation, replace: bool = False) -> None:
        """Register *relation* under its schema name.

        The schema name must be a non-empty identifier (it has to be
        addressable from the query language).  Raises
        :class:`CatalogError` on duplicates unless *replace*.
        """
        name = relation.name
        if not isinstance(name, str) or not name.isidentifier():
            raise CatalogError(
                f"relation name {name!r} is not a valid identifier; "
                f"rename it (e.g. relation.with_name('R')) before adding"
            )
        if name in self._relations and not replace:
            raise CatalogError(
                f"relation {name!r} already exists in database {self._name!r}"
            )
        self._install(relation)

    def _install(self, relation: ExtendedRelation) -> None:
        """Insert without name validation (deserialization trusts saved
        files, which may predate the identifier rule)."""
        name = relation.name
        if name in self._relations or name in self._pending:
            # A pending stub counts as existing: replacing it changes
            # the meaning of the name for anyone who resolved it.
            self._version += 1
            self._changed[name] = self._version
        self._pending.discard(name)
        self._relations[name] = relation
        self._notify(name)

    def changed_names_since(self, version: int) -> frozenset:
        """Names whose meaning changed after catalog *version*.

        A name "changes meaning" when it is replaced or dropped; adding
        a brand-new name does not (no existing query could have referred
        to it).  Sessions use this for targeted invalidation: only
        cached plans/results depending on one of these names are stale.
        """
        return frozenset(
            name
            for name, changed_at in self._changed.items()
            if changed_at > version
        )

    def add_listener(self, callback) -> None:
        """Call ``callback(names)`` after catalog mutations.

        *names* is a tuple of the mutated relation names -- a 1-tuple
        for a plain ``add``/``drop``, the distinct mutated names (in
        first-mutation order) for a bulk load inside :meth:`batch`.
        Listeners fire on adds as well as replaces/drops: a brand-new
        name never appears in :meth:`changed_names_since` (it cannot
        stale any cache), so the mutated names are passed explicitly --
        that is how a standing query learns its relation was first
        published.  Exceptions propagate to the mutator.
        """
        if callback not in self._listeners:
            self._listeners.append(callback)

    def remove_listener(self, callback) -> None:
        """Stop notifying *callback* (no-op when unregistered)."""
        if callback in self._listeners:
            self._listeners.remove(callback)

    @contextmanager
    def batch(self):
        """Coalesce listener notifications across a bulk mutation.

        Inside the context, mutations record their names instead of
        firing listeners; on exit, one notification carries all
        distinct mutated names.  Bulk loads (deserialization, partition
        reassembly, multi-relation publishes) use this so sessions run
        one invalidation/subscription sweep instead of one per
        relation.  Nested batches coalesce into the outermost one.

        >>> db = Database()
        >>> events = []
        >>> db.add_listener(events.append)
        >>> from repro.datasets.restaurants import table_ra, table_rb
        >>> with db.batch():
        ...     db.add(table_ra()); db.add(table_rb())
        >>> events
        [('RA', 'RB')]
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._batch_names:
                names = tuple(dict.fromkeys(self._batch_names))
                self._batch_names = []
                self._fire(names)

    def add_all(self, relations, replace: bool = False) -> None:
        """Register many relations under one batched notification."""
        with self.batch():
            for relation in relations:
                self.add(relation, replace=replace)

    def _notify(self, name: str) -> None:
        if self._batch_depth:
            self._batch_names.append(name)
            return
        self._fire((name,))

    def _fire(self, names: tuple[str, ...]) -> None:
        for callback in tuple(self._listeners):
            callback(names)

    def get(self, name: str) -> ExtendedRelation:
        """The relation registered under *name*.

        A lazily-opened catalog materializes the relation from the
        attached store on first access (no version bump, no listener
        notification -- nothing can hold a stale view of a relation
        that was never loaded).
        """
        try:
            return self._relations[name]
        except KeyError:
            if name in self._pending:
                return self._materialize(name)
            known_names = set(self._relations) | self._pending
            known = ", ".join(sorted(known_names)) or "(none)"
            raise CatalogError(
                f"no relation {name!r} in database {self._name!r} "
                f"(known: {known}){_did_you_mean(name, known_names)}"
            ) from None

    def _materialize(self, name: str) -> ExtendedRelation:
        """Load a pending stub's relation from the attached store."""
        relation = self._require_backend().load_relation(name)
        self._pending.discard(name)
        self._relations[name] = relation
        return relation

    def drop(self, name: str) -> None:
        """Remove the relation registered under *name*."""
        if name in self._pending:
            # Dropping an unmaterialized stub never reads its rows.
            self._pending.discard(name)
        elif name in self._relations:
            del self._relations[name]
        else:
            known_names = set(self._relations) | self._pending
            raise CatalogError(
                f"cannot drop unknown relation {name!r} from "
                f"{self._name!r}{_did_you_mean(name, known_names)}"
            )
        self._version += 1
        self._changed[name] = self._version
        self._notify(name)

    def names(self) -> tuple[str, ...]:
        """All registered relation names, sorted."""
        return tuple(sorted(set(self._relations) | self._pending))

    def relations(self) -> tuple[ExtendedRelation, ...]:
        """All registered relations, sorted by name (materializes any
        pending stubs)."""
        return tuple(self.get(name) for name in self.names())

    def __contains__(self, name: object) -> bool:
        return name in self._relations or name in self._pending

    def __iter__(self) -> Iterator[ExtendedRelation]:
        return iter(self.relations())

    def __len__(self) -> int:
        return len(self._relations) + len(self._pending)

    # -- the query engine ---------------------------------------------------

    def session(self):
        """The database's default :class:`repro.session.Session`.

        Created lazily and reused: ``db.query``, ``db.explain`` and
        ``db.rel`` all share its plan/result caches.  Build separate
        ``Session(db)`` instances for independently-cached workloads.
        """
        if self._session is None:
            from repro.session import Session

            self._session = Session(self)
        return self._session

    def rel(self, name: str):
        """A lazy fluent expression over the relation *name*.

        >>> from repro.datasets.restaurants import table_ra
        >>> db = Database(); db.add(table_ra())
        >>> db.rel("RA").project("rname", "rating").schema().names
        ('rname', 'rating')
        """
        return self.session().rel(name)

    def query(self, text: str) -> ExtendedRelation:
        """Parse, plan and execute a query against this database.

        Runs through the default session, so repeated queries hit its
        caches.  See :mod:`repro.query` for the language.
        """
        return self.session().execute(text)

    def explain(self, text: str) -> str:
        """The optimized logical plan of a query, rendered as text."""
        return self.session().explain(text)

    def __repr__(self) -> str:
        return f"Database({self._name!r}, {len(self)} relations)"
