"""An in-memory database of extended relations.

:class:`Database` is the catalog the query executor resolves relation
names against, and the convenient front door for interactive use::

    db = Database("tourist_bureau")
    db.add(table_ra())
    db.add(table_rb())
    result = db.query("SELECT rname FROM RA WHERE speciality IS {si}")
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import CatalogError
from repro.model.relation import ExtendedRelation


class Database:
    """A named catalog of extended relations."""

    def __init__(self, name: str = "db"):
        self._name = str(name)
        self._relations: dict[str, ExtendedRelation] = {}

    @property
    def name(self) -> str:
        """The database name."""
        return self._name

    def add(self, relation: ExtendedRelation, replace: bool = False) -> None:
        """Register *relation* under its schema name.

        Raises :class:`CatalogError` on duplicates unless *replace*.
        """
        name = relation.name
        if name in self._relations and not replace:
            raise CatalogError(
                f"relation {name!r} already exists in database {self._name!r}"
            )
        self._relations[name] = relation

    def get(self, name: str) -> ExtendedRelation:
        """The relation registered under *name*."""
        try:
            return self._relations[name]
        except KeyError:
            known = ", ".join(sorted(self._relations)) or "(none)"
            raise CatalogError(
                f"no relation {name!r} in database {self._name!r} "
                f"(known: {known})"
            ) from None

    def drop(self, name: str) -> None:
        """Remove the relation registered under *name*."""
        if name not in self._relations:
            raise CatalogError(
                f"cannot drop unknown relation {name!r} from {self._name!r}"
            )
        del self._relations[name]

    def names(self) -> tuple[str, ...]:
        """All registered relation names, sorted."""
        return tuple(sorted(self._relations))

    def relations(self) -> tuple[ExtendedRelation, ...]:
        """All registered relations, sorted by name."""
        return tuple(self._relations[name] for name in self.names())

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[ExtendedRelation]:
        return iter(self.relations())

    def __len__(self) -> int:
        return len(self._relations)

    def query(self, text: str) -> ExtendedRelation:
        """Parse, plan and execute a query against this database.

        See :mod:`repro.query` for the language.
        """
        from repro.query import execute

        return execute(text, self)

    def explain(self, text: str) -> str:
        """The optimized logical plan of a query, rendered as text."""
        from repro.query import explain

        return explain(text, self)

    def __repr__(self) -> str:
        return f"Database({self._name!r}, {len(self._relations)} relations)"
