"""Lossless JSON serialization of extended relations and databases.

Design choices:

* evidence sets serialize in the paper's bracket notation (exact
  fractions as ``1/3``), so serialized relations are human-readable and
  re-parse losslessly;
* memberships serialize as ``[sn, sp]`` strings with the same exactness;
* schemas serialize structurally (domains included), so a relation file
  is self-contained.

Floats round-trip through ``repr`` (shortest-repr guarantees equality);
exactness of Fractions is preserved verbatim.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path

from repro.errors import SerializationError
from repro.ds.frame import OMEGA, is_omega
from repro.ds.mass import MassFunction
from repro.ds.notation import format_atom, parse_atom
from repro.model.attribute import Attribute
from repro.model.domain import (
    AnyDomain,
    BooleanDomain,
    Domain,
    EnumeratedDomain,
    NumericDomain,
    TextDomain,
)
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.membership import TupleMembership
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.storage.database import Database

#: Serialization format version, embedded in every document.
FORMAT_VERSION = 1


def _number_to_json(value) -> object:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    return value


def _number_from_json(value) -> object:
    if isinstance(value, str):
        try:
            return Fraction(value)
        except (ValueError, ZeroDivisionError) as exc:
            raise SerializationError(f"bad numeric literal {value!r}") from exc
    return value


# -- domains -----------------------------------------------------------------


def domain_to_json(domain: Domain) -> dict:
    """Serialize a domain structurally."""
    if isinstance(domain, BooleanDomain):
        return {"kind": "boolean", "name": domain.name}
    if isinstance(domain, EnumeratedDomain):
        return {
            "kind": "enumerated",
            "name": domain.name,
            "values": sorted(domain.values, key=repr),
        }
    if isinstance(domain, NumericDomain):
        return {
            "kind": "numeric",
            "name": domain.name,
            "low": domain.low,
            "high": domain.high,
            "integral": domain.integral,
        }
    if isinstance(domain, TextDomain):
        pattern = domain._pattern.pattern if domain._pattern is not None else None
        return {"kind": "text", "name": domain.name, "pattern": pattern}
    if isinstance(domain, AnyDomain):
        return {"kind": "any", "name": domain.name}
    raise SerializationError(f"cannot serialize domain {domain!r}")


def domain_from_json(document: dict) -> Domain:
    """Deserialize a domain."""
    kind = document.get("kind")
    name = document.get("name", "domain")
    if kind == "boolean":
        return BooleanDomain(name)
    if kind == "enumerated":
        return EnumeratedDomain(name, document["values"])
    if kind == "numeric":
        return NumericDomain(
            name,
            low=document.get("low"),
            high=document.get("high"),
            integral=document.get("integral", False),
        )
    if kind == "text":
        return TextDomain(name, pattern=document.get("pattern"))
    if kind == "any":
        return AnyDomain(name)
    raise SerializationError(f"unknown domain kind {kind!r}")


# -- schemas ------------------------------------------------------------------


def schema_to_json(schema: RelationSchema) -> dict:
    """Serialize a relation schema."""
    return {
        "name": schema.name,
        "attributes": [
            {
                "name": attribute.name,
                "domain": domain_to_json(attribute.domain),
                "key": attribute.key,
                "uncertain": attribute.uncertain,
            }
            for attribute in schema.attributes
        ],
    }


def schema_from_json(document: dict) -> RelationSchema:
    """Deserialize a relation schema."""
    try:
        attributes = [
            Attribute(
                entry["name"],
                domain_from_json(entry["domain"]),
                key=entry.get("key", False),
                uncertain=entry.get("uncertain", False),
            )
            for entry in document["attributes"]
        ]
        return RelationSchema(document["name"], attributes)
    except KeyError as exc:
        raise SerializationError(f"schema document missing field {exc}") from exc


# -- evidence -------------------------------------------------------------------


def _evidence_to_json(evidence: EvidenceSet) -> dict:
    """Serialize one evidence set.

    Exact (Fraction) evidence uses the paper's human-readable bracket
    notation.  Float evidence is stored structurally, mass by mass:
    re-encoding each float as an exact fraction would make the masses
    sum to something other than exactly 1 and fail re-validation.
    """
    mass_function = evidence.mass_function
    if mass_function.is_exact():
        return {"evidence": evidence.format(style="fraction")}
    items = []
    for element, value in mass_function.items():
        if is_omega(element):
            rendered = None
        else:
            rendered = sorted(format_atom(member) for member in element)
        items.append({"element": rendered, "mass": float(value)})
    return {"evidence_items": items}


def _evidence_from_json(document: dict, domain) -> EvidenceSet:
    """Deserialize one evidence set (either encoding).

    Evidence over an enumerated domain is compiled to the kernel form
    (:mod:`repro.ds.kernel`) as it is loaded: the schema's domains
    deserialize to equal frames, which intern to one shared bit
    assignment per attribute, so a reloaded database is immediately
    back on the compiled fast path for queries and merges.
    """
    if "evidence" in document:
        return EvidenceSet.parse(document["evidence"], domain).compile()
    masses: dict = {}
    for item in document["evidence_items"]:
        rendered = item["element"]
        if rendered is None:
            element: object = OMEGA
        else:
            element = frozenset(parse_atom(member) for member in rendered)
        masses[element] = masses.get(element, 0.0) + item["mass"]
    frame = domain.frame() if domain is not None and domain.is_enumerable else None
    return EvidenceSet(MassFunction(masses, frame), domain).compile()


# -- relations -----------------------------------------------------------------


def _tuple_to_json(etuple: ExtendedTuple) -> dict:
    """Serialize one tuple's values + membership."""
    values: dict[str, object] = {}
    for name, value in etuple.items():
        if isinstance(value, EvidenceSet):
            values[name] = _evidence_to_json(value)
        else:
            values[name] = _number_to_json(value) if isinstance(
                value, Fraction
            ) else value
    return {
        "values": values,
        "membership": [
            _number_to_json(etuple.membership.sn),
            _number_to_json(etuple.membership.sp),
        ],
    }


def _tuple_from_json(row: dict, schema: RelationSchema) -> ExtendedTuple:
    """Deserialize one tuple against its schema."""
    values: dict[str, object] = {}
    for name, value in row["values"].items():
        if isinstance(value, dict) and (
            "evidence" in value or "evidence_items" in value
        ):
            attribute = schema.attribute(name)
            values[name] = _evidence_from_json(value, attribute.domain)
        else:
            values[name] = value
    sn, sp = row["membership"]
    membership = TupleMembership(_number_from_json(sn), _number_from_json(sp))
    return ExtendedTuple(schema, values, membership)


def relation_to_json(
    relation: ExtendedRelation, partitions: int | None = None
) -> dict:
    """Serialize a relation (schema + tuples) to JSON-able structures.

    With *partitions* ``> 1`` the tuples are stored as the relation's
    hash shards (:meth:`ExtendedRelation.partitions`) under
    ``tuple_partitions`` instead of a flat ``tuples`` list.  The layout
    survives the round trip: the loader reassembles the shards through
    :meth:`ExtendedRelation.from_partitions`, so a reloaded relation
    re-partitions into exactly the shards that were saved -- a sharded
    engine can restore its partition layout without re-hashing
    mismatches.
    """
    document = {
        "format_version": FORMAT_VERSION,
        "schema": schema_to_json(relation.schema),
    }
    if partitions is not None and partitions > 1:
        document["partitions"] = int(partitions)
        document["tuple_partitions"] = [
            [_tuple_to_json(etuple) for etuple in shard]
            for shard in relation.partitions(partitions)
        ]
    else:
        document["tuples"] = [_tuple_to_json(etuple) for etuple in relation]
    return document


def tuple_count(document: dict) -> int:
    """The number of tuples a relation document holds (either layout)."""
    if "tuple_partitions" in document:
        return sum(len(shard) for shard in document["tuple_partitions"])
    return len(document.get("tuples", []))


def relation_from_json(document: dict) -> ExtendedRelation:
    """Deserialize a relation (flat or partitioned layout)."""
    if document.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {document.get('format_version')!r}"
        )
    schema = schema_from_json(document["schema"])
    if "tuple_partitions" in document:
        shards = [
            ExtendedRelation(
                schema, [_tuple_from_json(row, schema) for row in rows]
            )
            for rows in document["tuple_partitions"]
        ]
        return ExtendedRelation.from_partitions(schema, shards)
    tuples = [_tuple_from_json(row, schema) for row in document["tuples"]]
    return ExtendedRelation(schema, tuples)


# -- databases --------------------------------------------------------------------


def database_to_json(
    database: Database, partitions: int | None = None
) -> dict:
    """Serialize a whole database.

    *partitions* applies the partition-sharded tuple layout (see
    :func:`relation_to_json`) to every relation.
    """
    return {
        "format_version": FORMAT_VERSION,
        "name": database.name,
        "relations": [
            relation_to_json(relation, partitions=partitions)
            for relation in database
        ],
    }


def database_from_json(document: dict) -> Database:
    """Deserialize a whole database."""
    if document.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {document.get('format_version')!r}"
        )
    database = Database(document.get("name", "db"))
    # One batched change notification for the whole load: listeners
    # (session invalidation sweeps, subscription refreshes) see a single
    # event instead of one per relation.
    with database.batch():
        for entry in document.get("relations", []):
            # Bypass the identifier check: files saved before the rule
            # existed must stay loadable (their relations remain
            # reachable via get/show even when the query language
            # cannot name them).
            database._install(relation_from_json(entry))
    return database


# -- file helpers --------------------------------------------------------------------


def save_relation(
    relation: ExtendedRelation, path, partitions: int | None = None
) -> None:
    """Write a relation to a JSON file (optionally hash-partitioned)."""
    Path(path).write_text(
        json.dumps(relation_to_json(relation, partitions=partitions), indent=2)
    )


def _read_json_document(path) -> dict:
    """Read + parse one JSON file, folding I/O failures into
    :class:`SerializationError` (with the offending path) so CLI users
    and backend callers see one error family instead of raw
    ``FileNotFoundError``/``JSONDecodeError`` leaks."""
    try:
        text = Path(path).read_text()
    except FileNotFoundError as exc:
        raise SerializationError(f"no such file: {path}") from exc
    except OSError as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc


def load_relation(path) -> ExtendedRelation:
    """Read a relation from a JSON file."""
    return relation_from_json(_read_json_document(path))


def save_database(database: Database, path) -> None:
    """Write a database to a JSON file."""
    Path(path).write_text(json.dumps(database_to_json(database), indent=2))


def load_database(path) -> Database:
    """Read a database from a JSON file."""
    return database_from_json(_read_json_document(path))
