"""Rendering extended relations as text tables, paper-style.

The paper prints extended relations with one column per attribute (the
uncertain ones showing bracketed evidence sets) plus a final ``(sn,sp)``
column.  :func:`format_relation` reproduces that layout so examples and
benchmarks can print "the same rows the paper reports".
"""

from __future__ import annotations

from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.relation import ExtendedRelation


def format_tuple(
    etuple: ExtendedTuple, style: str = "decimal", digits: int = 3
) -> dict[str, str]:
    """One tuple as a column -> rendered-text mapping."""
    cells: dict[str, str] = {}
    for name, value in etuple.items():
        attribute = etuple.schema.attribute(name)
        if isinstance(value, EvidenceSet):
            if value.is_definite():
                cells[attribute.display_name] = str(value.definite_value())
            else:
                cells[attribute.display_name] = value.format(style, digits)
        else:
            cells[attribute.display_name] = str(value)
    cells["(sn,sp)"] = etuple.membership.format(style="decimal", digits=2)
    return cells


def format_relation(
    relation: ExtendedRelation,
    style: str = "decimal",
    digits: int = 3,
    title: str | None = None,
) -> str:
    """A whole relation as an aligned text table.

    >>> from repro.datasets.restaurants import table_ra
    >>> print(format_relation(table_ra()).splitlines()[0])  # doctest: +SKIP
    """
    header = [
        relation.schema.attribute(name).display_name
        for name in relation.schema.names
    ] + ["(sn,sp)"]
    rows = [format_tuple(etuple, style, digits) for etuple in relation]
    widths = {column: len(column) for column in header}
    for row in rows:
        for column in header:
            widths[column] = max(widths[column], len(row.get(column, "")))

    def render_line(cells: dict[str, str] | None) -> str:
        if cells is None:
            return "-+-".join("-" * widths[column] for column in header)
        return " | ".join(
            cells.get(column, "").ljust(widths[column]) for column in header
        )

    lines = []
    if title is None:
        title = f"Table {relation.name}"
    lines.append(title)
    lines.append(render_line({column: column for column in header}))
    lines.append(render_line(None))
    for row in rows:
        lines.append(render_line(row))
    return "\n".join(lines)
