"""Storage layer: catalogs, serialization, pluggable backends, rendering.

* :mod:`repro.storage.database` -- an in-memory database of extended
  relations with a catalog, the execution target of the query layer;
  ``Database.open(url)``/``persist()`` bind it to a storage backend;
* :mod:`repro.storage.serialization` -- the lossless JSON codec for
  relations and databases (exact fractions serialize as ``"1/3"``),
  shared by every backend;
* :mod:`repro.storage.backends` -- the :class:`StorageBackend` engines
  behind URL-style locations: ``json:`` (one file per database),
  ``sqlite:`` (one row per tuple, relations load individually),
  ``log:`` (append-only journal with write-ahead stream durability);
* :mod:`repro.storage.formatting` -- renders extended relations as text
  tables in the paper's style (bracketed evidence sets, ``(sn,sp)``
  column).
"""

from repro.storage.database import Database
from repro.storage.serialization import (
    database_from_json,
    database_to_json,
    load_database,
    load_relation,
    relation_from_json,
    relation_to_json,
    save_database,
    save_relation,
)
from repro.storage.backends import (
    JsonBackend,
    LogBackend,
    SqliteBackend,
    StorageBackend,
    create_database,
    open_backend,
    open_database,
    resolve_backend,
)
from repro.storage.formatting import format_relation, format_tuple

__all__ = [
    "Database",
    "relation_to_json",
    "relation_from_json",
    "database_to_json",
    "database_from_json",
    "save_relation",
    "load_relation",
    "save_database",
    "load_database",
    "StorageBackend",
    "JsonBackend",
    "SqliteBackend",
    "LogBackend",
    "resolve_backend",
    "open_backend",
    "open_database",
    "create_database",
    "format_relation",
    "format_tuple",
]
