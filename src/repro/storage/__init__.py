"""Storage layer: catalogs, serialization and table rendering.

* :mod:`repro.storage.database` -- an in-memory database of extended
  relations with a catalog, the execution target of the query layer;
* :mod:`repro.storage.serialization` -- lossless JSON round-tripping of
  relations and databases (exact fractions serialize as ``"1/3"``);
* :mod:`repro.storage.formatting` -- renders extended relations as text
  tables in the paper's style (bracketed evidence sets, ``(sn,sp)``
  column).
"""

from repro.storage.database import Database
from repro.storage.serialization import (
    database_from_json,
    database_to_json,
    load_database,
    load_relation,
    relation_from_json,
    relation_to_json,
    save_database,
    save_relation,
)
from repro.storage.formatting import format_relation, format_tuple

__all__ = [
    "Database",
    "relation_to_json",
    "relation_from_json",
    "database_to_json",
    "database_from_json",
    "save_relation",
    "load_relation",
    "save_database",
    "load_database",
    "format_relation",
    "format_tuple",
]
