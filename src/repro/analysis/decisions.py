"""Decision views: collapsing evidence sets into crisp values.

An extended relation answers queries with graded certainty; a *decision
view* commits.  For every uncertain attribute of every tuple, a decision
policy picks one value:

* ``"max_belief"`` -- the most strongly supported singleton (cautious:
  high belief means every piece of evidence commits to it);
* ``"max_plausibility"`` -- the least refuted singleton (credulous);
* ``"pignistic"`` -- maximal pignistic probability (the betting choice).

Each decided cell carries its *confidence*: the decided value's belief,
plausibility, or pignistic probability respectively, so consumers can
still see how solid each commitment is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OperationError
from repro.ds.transforms import (
    max_belief_decision,
    max_pignistic_decision,
    max_plausibility_decision,
    pignistic,
)
from repro.model.evidence import EvidenceSet
from repro.model.membership import TupleMembership
from repro.model.relation import ExtendedRelation

#: The supported decision policies.
DecisionPolicy = ("max_belief", "max_plausibility", "pignistic")


@dataclass(frozen=True)
class CrispRow:
    """One decided tuple: plain values plus per-cell confidence."""

    key: tuple
    values: dict
    confidence: dict
    membership: TupleMembership


def _decide_evidence(evidence: EvidenceSet, policy: str):
    if policy == "max_belief":
        value = max_belief_decision(evidence.mass_function)
        return value, evidence.bel({value})
    if policy == "max_plausibility":
        value = max_plausibility_decision(evidence.mass_function)
        return value, evidence.pls({value})
    value = max_pignistic_decision(evidence.mass_function)
    return value, pignistic(evidence.mass_function)[value]


def decide(
    relation: ExtendedRelation,
    policy: str = "max_belief",
    min_membership_sn: object = 0,
) -> list[CrispRow]:
    """Collapse *relation* into crisp rows under *policy*.

    Tuples whose membership ``sn`` falls below *min_membership_sn* are
    omitted (they are too uncertain to commit to at all).

    >>> from repro.algebra import union
    >>> from repro.datasets.restaurants import table_ra, table_rb
    >>> rows = decide(union(table_ra(), table_rb()), policy="pignistic")
    >>> garden = next(r for r in rows if r.key == ("garden",))
    >>> garden.values["speciality"]
    'si'
    """
    if policy not in DecisionPolicy:
        raise OperationError(
            f"unknown decision policy {policy!r}; expected one of "
            f"{DecisionPolicy}"
        )
    from repro.ds.mass import coerce_mass_value

    min_membership_sn = coerce_mass_value(min_membership_sn)
    rows: list[CrispRow] = []
    for etuple in relation:
        if etuple.membership.sn < min_membership_sn:
            continue
        values: dict = {}
        confidence: dict = {}
        for name, value in etuple.items():
            if isinstance(value, EvidenceSet):
                decided, score = _decide_evidence(value, policy)
                values[name] = decided
                confidence[name] = score
            else:
                values[name] = value
                confidence[name] = 1
        rows.append(
            CrispRow(
                key=etuple.key(),
                values=values,
                confidence=confidence,
                membership=etuple.membership,
            )
        )
    return rows
