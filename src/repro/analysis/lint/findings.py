"""Findings: what a checker reports, and how it is identified over time.

A :class:`Finding` pins a rule violation to a file and line for the
human report, and to a *stable key* for the baseline: the key is built
from the rule, the module path and a checker-chosen anchor (usually the
enclosing ``class.function`` qualname plus a short detail token), **not**
from the line number -- so unrelated edits above a finding do not churn
the baseline, while fixing the finding makes its baseline entry stale
(which the runner reports as an error: the baseline must shrink with the
debt it records).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: rule identifier, e.g. ``EXACT001``
    path: str  #: file path as analyzed (posix)
    line: int  #: 1-based line of the offending node
    column: int  #: 0-based column of the offending node
    message: str  #: human-readable description of the violation
    anchor: str  #: stable within-module identity (scope + detail token)
    key: str = field(default="", compare=False)  #: baseline key (runner-set)

    def location(self) -> str:
        """``path:line:col`` for the human report."""
        return f"{self.path}:{self.line}:{self.column}"

    def render(self) -> str:
        """One human-readable report line."""
        return f"{self.location()}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        """The JSON-report shape of this finding."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "key": self.key,
        }


def module_key(path: str) -> str:
    """Normalize *path* into the module part of baseline keys.

    Keys must survive being produced from ``src/repro/...``,
    ``./src/repro/...`` or an absolute path to the same file, so the
    path is cut down to the segment starting at ``repro/`` when one
    exists.
    """
    posix = path.replace("\\", "/").lstrip("./")
    marker = posix.rfind("repro/")
    return posix[marker:] if marker >= 0 else posix


def assign_keys(findings: list[Finding]) -> list[Finding]:
    """Set each finding's baseline key, disambiguating duplicates.

    Keys are ``rule:module:anchor``; repeated identical anchors within a
    module (two float literals in one function, say) get a stable
    ``#2``, ``#3``... suffix in source order.
    """
    seen: dict[str, int] = {}
    keyed = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.column)):
        base = f"{finding.rule}:{module_key(finding.path)}:{finding.anchor}"
        count = seen.get(base, 0) + 1
        seen[base] = count
        key = base if count == 1 else f"{base}#{count}"
        keyed.append(
            Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                column=finding.column,
                message=finding.message,
                anchor=finding.anchor,
                key=key,
            )
        )
    return keyed
