"""The checker framework: parsed modules, the visitor base, pragmas.

A checker sees one :class:`Module` at a time (parsed AST + source
lines + the inline-ignore table) and may keep cross-module state until
:meth:`Checker.finish` (the BACKEND contract checker resolves class
hierarchies across files that way).  Suppression is the runner's job:
checkers report every violation they see; ``# repro: ignore[RULE]``
pragmas and the baseline are applied afterwards, so the JSON report can
say *why* a finding does not fail the run.
"""

from __future__ import annotations

import ast
import re

from pathlib import Path

from repro.analysis.lint.findings import Finding

#: Inline escape hatch: ``# repro: ignore[EXACT001]`` on the offending
#: line suppresses matching rules there; a bare ``# repro: ignore``
#: suppresses every rule on the line.  Rule names may be families --
#: ``EXACT`` matches ``EXACT001``, ``EXACT002``, ...  A pragma on a
#: comment-only line applies to the next source line instead (for lines
#: too dense to carry a trailing comment).
IGNORE_PRAGMA = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


def parse_ignores(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule families ignored there.

    The special entry ``"*"`` means every rule.
    """
    ignores: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = IGNORE_PRAGMA.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None or not rules.strip():
            families = frozenset({"*"})
        else:
            families = frozenset(
                rule.strip().upper() for rule in rules.split(",") if rule.strip()
            )
        target = lineno + 1 if line.strip().startswith("#") else lineno
        ignores[target] = ignores.get(target, frozenset()) | families
    return ignores


def is_ignored(rule: str, line: int, ignores: dict[int, frozenset[str]]) -> bool:
    """Whether *rule* is pragma-suppressed on *line*."""
    families = ignores.get(line)
    if families is None:
        return False
    return "*" in families or any(rule.startswith(f) for f in families)


class Module:
    """One parsed source file, as checkers see it."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.posix = str(Path(path).as_posix())
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.ignores = parse_ignores(source)


class Checker:
    """Base class for one invariant checker.

    Subclasses set :attr:`name`, :attr:`rules` (rule id -> one-line
    description) and :attr:`paths` (module-path fragments the checker
    applies to; empty means every analyzed file), and implement
    :meth:`check`.  Cross-module checkers accumulate state in
    :meth:`check` and emit from :meth:`finish`.
    """

    name: str = "?"
    rules: dict[str, str] = {}
    paths: tuple[str, ...] = ()

    def applies_to(self, module_posix: str) -> bool:
        """Whether this checker runs on the module at *module_posix*."""
        if not self.paths:
            return True
        return any(fragment in module_posix for fragment in self.paths)

    def check(self, module: Module) -> list[Finding]:
        """Report violations in one module."""
        raise NotImplementedError

    def finish(self) -> list[Finding]:
        """Report cross-module violations after every module was seen."""
        return []


class ScopedVisitor(ast.NodeVisitor):
    """An AST visitor that tracks the enclosing class/function qualname.

    Checkers subclass this to anchor findings to stable scopes: the
    current :meth:`qualname` (``"<module>"`` at top level, else the
    dotted def/class path) keys the baseline, so findings survive
    line-number churn.
    """

    def __init__(self, module: Module):
        self.module = module
        self.findings: list[Finding] = []
        self._scopes: list[str] = []
        self._scope_kinds: list[str] = []

    def qualname(self) -> str:
        return ".".join(self._scopes) if self._scopes else "<module>"

    def in_function(self) -> bool:
        """Whether the visitor is inside any def (not at module level)."""
        return "def" in self._scope_kinds

    def _enter(self, name: str, kind: str) -> None:
        self._scopes.append(name)
        self._scope_kinds.append(kind)

    def _exit(self) -> None:
        self._scopes.pop()
        self._scope_kinds.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node.name, "def")
        self.generic_visit(node)
        self._exit()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node.name, "def")
        self.generic_visit(node)
        self._exit()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node.name, "class")
        self.generic_visit(node)
        self._exit()

    def report(self, rule: str, node: ast.AST, message: str, detail: str) -> None:
        """Record one finding anchored to the current scope."""
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.posix,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                message=message,
                anchor=f"{self.qualname()}:{detail}",
            )
        )


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
