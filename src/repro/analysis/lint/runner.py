"""The reprolint runner: walk files, run checkers, apply pragmas/baseline.

``python -m repro.analysis [--json] [--baseline FILE] [paths...]``

Exit status: 0 when every finding is pragma-suppressed or baselined and
no baseline entry is stale; 1 otherwise; 2 on usage errors.  Files that
fail to parse are reported under the pseudo-rule ``PARSE`` (a broken
file must fail the lint leg, not vanish from it).
"""

from __future__ import annotations

import argparse
import json
import sys

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.base import Checker, Module, is_ignored
from repro.analysis.lint.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
    split_by_baseline,
)
from repro.analysis.lint.checkers import all_checkers
from repro.analysis.lint.findings import Finding, assign_keys


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced, pre-verdict."""

    findings: list[Finding] = field(default_factory=list)  #: actionable
    ignored: list[Finding] = field(default_factory=list)  #: pragma-suppressed
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale_baseline

    def to_json(self) -> dict:
        return {
            "files": self.files,
            "findings": [f.to_json() for f in self.findings],
            "ignored": [f.to_json() for f in self.ignored],
            "baselined": [f.to_json() for f in self.baselined],
            "stale_baseline": self.stale_baseline,
            "clean": self.clean,
        }


def discover_files(paths: list[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def parse_module(path: Path) -> tuple[Module | None, Finding | None]:
    """Parse one file; syntax/IO failures become ``PARSE`` findings."""
    try:
        source = path.read_text(encoding="utf-8")
        return Module(str(path), source), None
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return None, Finding(
            rule="PARSE",
            path=str(path.as_posix()),
            line=line,
            column=0,
            message=f"cannot analyze: {exc}",
            anchor="parse-error",
        )


def analyze(
    paths: list[str],
    checkers: list[Checker] | None = None,
    baseline_path: str | None = None,
) -> AnalysisResult:
    """Run *checkers* (default: all four) over *paths*."""
    active = checkers if checkers is not None else all_checkers()
    result = AnalysisResult()
    raw: list[Finding] = []
    modules: list[Module] = []
    for path in discover_files(paths):
        module, parse_failure = parse_module(path)
        if parse_failure is not None:
            raw.append(parse_failure)
            continue
        modules.append(module)
        result.files += 1
        for checker in active:
            if checker.applies_to(module.posix):
                raw.extend(checker.check(module))
    for checker in active:
        raw.extend(checker.finish())

    ignores_by_path = {module.posix: module.ignores for module in modules}
    visible: list[Finding] = []
    ignored: list[Finding] = []
    for finding in assign_keys(raw):
        ignores = ignores_by_path.get(finding.path, {})
        if is_ignored(finding.rule, finding.line, ignores):
            ignored.append(finding)
        else:
            visible.append(finding)
    result.ignored = ignored

    baseline = load_baseline(baseline_path) if baseline_path else {}
    new, baselined, stale = split_by_baseline(visible, baseline)
    result.findings = new
    result.baselined = baselined
    result.stale_baseline = stale
    return result


def render_report(result: AnalysisResult, out=sys.stdout) -> None:
    """The human-readable report."""
    for finding in result.findings:
        print(finding.render(), file=out)
    for entry in result.stale_baseline:
        print(
            f"stale baseline entry: {entry.get('key')} -- the finding no "
            f"longer occurs; regenerate with --write-baseline",
            file=out,
        )
    print(
        f"repro.analysis: {result.files} file(s), "
        f"{len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{len(result.ignored)} pragma-ignored, "
        f"{len(result.stale_baseline)} stale baseline entr"
        f"{'y' if len(result.stale_baseline) == 1 else 'ies'}",
        file=out,
    )


def list_rules(out=sys.stdout) -> None:
    for checker in all_checkers():
        for rule, description in sorted(checker.rules.items()):
            print(f"{rule}  {description}", file=out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: invariant-enforcing static analysis (EXACT, "
            "DETERM, CONC, BACKEND) for the repro codebase"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings listed in FILE; stale entries fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    return parser


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        list_rules(out)
        return 0
    if args.write_baseline and not args.baseline:
        print(
            "error: --write-baseline requires --baseline FILE",
            file=sys.stderr,
        )
        return 2
    try:
        # When (re)writing, findings are collected against an empty
        # baseline so the new file lists everything currently visible.
        result = analyze(
            args.paths,
            baseline_path=None if args.write_baseline else args.baseline,
        )
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        save_baseline(args.baseline, result.findings)
        print(
            f"wrote {len(result.findings)} entr"
            f"{'y' if len(result.findings) == 1 else 'ies'} to "
            f"{args.baseline}",
            file=out,
        )
        return 0
    if args.json:
        print(json.dumps(result.to_json(), indent=2), file=out)
    else:
        render_report(result, out)
    return 0 if result.clean else 1
