"""EXACT: the exact-Fraction contract on mass-value paths.

The paper's algebra is exact: masses are rationals, Dempster's rule is
rational arithmetic, and the whole equivalence story (kernel vs
frozenset, parallel vs serial, storage round trips -- the PR 3/4/5
property suites) asserts *bit-for-bit* equality, which only holds
because mass values never silently degrade to floating point.  All
numeric inputs funnel through :func:`repro.ds.mass.coerce_mass_value`;
code in :mod:`repro.ds` and :mod:`repro.algebra` that conjures floats
out of band -- a float literal, a ``float()`` cast, a division with a
literal operand (``1/3`` is ``0.333...``, not a third) -- bypasses that
funnel and breaks the contract.

Deliberate float boundaries exist (the float-tolerance validator, the
entropy measures, display formatting, ``to_float``) and carry inline
``# repro: ignore[EXACT]`` pragmas: the rule makes every such boundary
an explicit, reviewed decision instead of a silent default.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import Checker, Module, ScopedVisitor
from repro.analysis.lint.findings import Finding


class _ExactVisitor(ScopedVisitor):
    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            self.report(
                "EXACT001",
                node,
                f"float literal {node.value!r} on a mass-value path; use "
                f"Fraction (or string rationals through coerce_mass_value)",
                f"float-literal:{node.value!r}",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            self.report(
                "EXACT002",
                node,
                "float() cast on a mass-value path bypasses "
                "coerce_mass_value and drops exactness",
                "float-cast",
            )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div) and any(
            isinstance(side, ast.Constant)
            and isinstance(side.value, (int, float))
            and not isinstance(side.value, bool)
            for side in (node.left, node.right)
        ):
            self.report(
                "EXACT003",
                node,
                "bare / division with a numeric-literal operand; "
                "int/int truncates to float -- use Fraction(a, b)",
                "literal-division",
            )
        self.generic_visit(node)


class ExactChecker(Checker):
    """Float literals, casts and literal division in ds/ and algebra/."""

    name = "exact"
    paths = ("repro/ds/", "repro/algebra/")
    rules = {
        "EXACT001": "float literal on a mass-value path",
        "EXACT002": "float() cast on a mass-value path",
        "EXACT003": "bare / division with a numeric-literal operand",
    }

    def check(self, module: Module) -> list[Finding]:
        visitor = _ExactVisitor(module)
        visitor.visit(module.tree)
        return visitor.findings
