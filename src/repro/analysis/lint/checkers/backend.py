"""BACKEND: the ``StorageBackend`` contract, enforced at the source level.

PR 5's storage architecture hangs off one ABC: every engine implements
the full :class:`repro.storage.backends.base.StorageBackend` surface,
and every mutating save bumps the monotonic catalog version (session
caches fingerprint against it -- an engine that forgets the bump serves
stale results after a reopen, silently).  Python only enforces the
first half, and only at *instantiation* time; this checker enforces
both statically, across files:

* **BACKEND001** -- a concrete ``StorageBackend`` subclass missing part
  of the abstract surface (the ``@abc.abstractmethod``-decorated
  methods of the ABC), considering inherited implementations along the
  class chain within the analyzed files.
* **BACKEND002** -- a mutating hook (``_save_relation``,
  ``_save_database``, ``_delete_relation``) whose body never reaches a
  catalog-version bump: neither a direct ``catalog_version`` store/
  increment, nor (transitively) a ``self.``-call into a method that
  does.
"""

from __future__ import annotations

import ast

from dataclasses import dataclass, field

from repro.analysis.lint.base import Checker, Module, dotted_name
from repro.analysis.lint.findings import Finding

#: The hooks that must bump the catalog version.
MUTATING_HOOKS = ("_save_relation", "_save_database", "_delete_relation")

_BASE_NAME = "StorageBackend"


@dataclass
class _ClassInfo:
    name: str
    path: str
    posix: str
    line: int
    column: int
    bases: tuple[str, ...]
    methods: dict[str, ast.AST] = field(default_factory=dict)
    abstract_methods: set[str] = field(default_factory=set)


def _is_abstract_decorator(node: ast.AST) -> bool:
    name = dotted_name(node)
    return name is not None and name.split(".")[-1] in {
        "abstractmethod",
        "abstractproperty",
    }


def _bumps_catalog_directly(func: ast.AST) -> bool:
    """Whether *func* stores/increments a catalog version itself."""
    for node in ast.walk(func):
        target = None
        if isinstance(node, ast.AugAssign):
            target = node.target
        elif isinstance(node, ast.Assign):
            for candidate in node.targets:
                if _is_catalog_slot(candidate):
                    return True
        if target is not None and _is_catalog_slot(target):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            tail = name.split(".")[-1] if name else ""
            if "bump" in tail.lower():
                return True
            # _set_meta("catalog_version", ...) style helpers; plain
            # .get("catalog_version") reads do not count as a bump.
            if tail != "get" and node.args and _is_catalog_constant(node.args[0]):
                return True
    return False


def _is_catalog_slot(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "catalog_version":
        return True
    if isinstance(node, ast.Subscript) and _is_catalog_constant(node.slice):
        return True
    return False


def _is_catalog_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value == "catalog_version"


def _self_calls(func: ast.AST) -> set[str]:
    """Names of ``self.X(...)`` methods called anywhere in *func*."""
    calls: set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            calls.add(node.func.attr)
    return calls


class BackendChecker(Checker):
    """ABC-surface completeness and catalog-version discipline."""

    name = "backend"
    paths = ()  # subclasses may live anywhere; collection is cheap
    rules = {
        "BACKEND001": "StorageBackend subclass missing abstract methods",
        "BACKEND002": "mutating save path never bumps catalog_version",
    }

    def __init__(self):
        self._classes: dict[str, _ClassInfo] = {}

    def check(self, module: Module) -> list[Finding]:
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                name
                for base in node.bases
                if (name := dotted_name(base)) is not None
            )
            info = _ClassInfo(
                name=node.name,
                path=module.path,
                posix=module.posix,
                line=node.lineno,
                column=node.col_offset,
                bases=bases,
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[item.name] = item
                    if any(
                        _is_abstract_decorator(d) for d in item.decorator_list
                    ):
                        info.abstract_methods.add(item.name)
            self._classes[node.name] = info
        return []

    # -- resolution over the collected class graph --------------------------

    def _chain(self, info: _ClassInfo) -> list[_ClassInfo]:
        """*info* and its ancestors, nearest first, within analyzed files."""
        chain, queue, seen = [], [info], set()
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            chain.append(current)
            for base in current.bases:
                parent = self._classes.get(base.split(".")[-1])
                if parent is not None:
                    queue.append(parent)
        return chain

    def _is_backend_subclass(self, info: _ClassInfo) -> bool:
        if info.name == _BASE_NAME:
            return False
        for current in self._chain(info):
            # Resolved ancestors, plus base *names* for ancestors whose
            # defining module is outside the analyzed file set.
            if current is not info and current.name == _BASE_NAME:
                return True
            if any(base.split(".")[-1] == _BASE_NAME for base in current.bases):
                return True
        return False

    def _abstract_surface(self) -> set[str]:
        base = self._classes.get(_BASE_NAME)
        return set(base.abstract_methods) if base is not None else set()

    def _bumping_methods(self, chain: list[_ClassInfo]) -> set[str]:
        """Methods along *chain* that (transitively) bump the catalog."""
        methods: dict[str, ast.AST] = {}
        for info in reversed(chain):  # nearest class wins
            methods.update(info.methods)
        bumping = {
            name
            for name, func in methods.items()
            if _bumps_catalog_directly(func)
        }
        changed = True
        while changed:
            changed = False
            for name, func in methods.items():
                if name in bumping:
                    continue
                if _self_calls(func) & bumping:
                    bumping.add(name)
                    changed = True
        return bumping

    def finish(self) -> list[Finding]:
        surface = self._abstract_surface()
        findings: list[Finding] = []
        for info in self._classes.values():
            if info.name == _BASE_NAME or not self._is_backend_subclass(info):
                continue
            if info.abstract_methods:
                continue  # itself abstract: an intermediate base
            chain = self._chain(info)
            implemented = {
                name
                for cls in chain
                for name, _ in cls.methods.items()
                if name not in cls.abstract_methods
            }
            missing = sorted(surface - implemented)
            if missing:
                findings.append(
                    Finding(
                        rule="BACKEND001",
                        path=info.posix,
                        line=info.line,
                        column=info.column,
                        message=(
                            f"{info.name} does not implement the full "
                            f"StorageBackend surface; missing: "
                            f"{', '.join(missing)}"
                        ),
                        anchor=f"{info.name}:missing-abstract",
                    )
                )
            bumping = self._bumping_methods(chain)
            for hook in MUTATING_HOOKS:
                owner = next(
                    (cls for cls in chain if hook in cls.methods), None
                )
                if owner is None or hook in owner.abstract_methods:
                    continue  # BACKEND001 already covers absence
                if hook not in bumping:
                    node = owner.methods[hook]
                    findings.append(
                        Finding(
                            rule="BACKEND002",
                            path=owner.posix,
                            line=node.lineno,
                            column=node.col_offset,
                            message=(
                                f"{info.name}.{hook} mutates the store but "
                                f"never bumps catalog_version; reopened "
                                f"sessions would serve stale fingerprinted "
                                f"results"
                            ),
                            anchor=f"{info.name}.{hook}:no-catalog-bump",
                        )
                    )
        return findings
