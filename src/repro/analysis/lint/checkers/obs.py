"""OBS: telemetry instruments stay owned by their layer.

Every layer keeps its hot-path counters in a module-local ``STATS``
global on the thread-local-cells discipline and *registers* it with the
process-wide :class:`repro.obs.MetricsRegistry`; other layers read
through the registry (or through ``snapshot()``/``since()`` deltas).
The invariant this checker enforces:

* **OBS001** -- a ``STATS``/``COUNTERS``-style module global imported
  from *another package* is mutated in place: ``.bump()``/``.inc()``/
  ``.observe()``/``.set()`` calls, augmented assignments and attribute
  stores.  Cross-package bumps bypass the owning layer's aggregation
  discipline and make the metric catalogue unauditable -- new
  instruments belong in :mod:`repro.obs` (create a registry counter),
  not in another layer's globals.

Same-package imports stay legal (``repro.ds.combination`` bumping
``repro.ds.kernel``'s ``STATS`` is the owning layer counting its own
work), and :mod:`repro.obs` / :mod:`repro.counters` -- the telemetry
plumbing itself -- are exempt.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.lint.base import Checker, Module, ScopedVisitor
from repro.analysis.lint.findings import Finding

#: Module globals that look like a stats/counter block: SCREAMING_CASE
#: names ending in STATS or COUNTERS (``STATS``, ``KERNEL_STATS``, ...).
_STATS_NAME = re.compile(r"^[A-Z0-9_]*(STATS|COUNTERS)$")

#: In-place mutation entry points of the counter/registry instrument
#: APIs (ThreadLocalCounters.bump, Counter.inc, Histogram.observe,
#: Gauge.set, plus the generic add).
_MUTATING_METHODS = {"bump", "inc", "dec", "observe", "set", "add"}

#: Modules allowed to touch any instrument: the telemetry layer itself.
_EXEMPT_FRAGMENTS = ("repro/obs/", "repro/counters.py")


def _module_dotted(posix: str) -> str | None:
    """``.../src/repro/stream/engine.py`` -> ``repro.stream.engine``.

    Fixture trees place files under a virtual ``repro/...`` root, so the
    dotted path is anchored at the last ``repro`` path segment.
    """
    parts = posix.split("/")
    if "repro" not in parts:
        return None
    anchor = len(parts) - 1 - parts[::-1].index("repro")
    dotted = ".".join(parts[anchor:])
    return dotted[: -len(".py")] if dotted.endswith(".py") else dotted


def _package_of(dotted: str) -> str:
    return dotted.rpartition(".")[0]


def _foreign_stats_imports(tree: ast.Module, dotted: str) -> dict[str, str]:
    """Map local alias -> source module, for STATS-style names imported
    from a different package than the module at *dotted*."""
    package = _package_of(dotted)
    foreign: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        if node.level:
            # Relative: resolve against the importing module's package.
            base = package.split(".") if package else []
            if node.level > 1:
                base = base[: len(base) - (node.level - 1)]
            source = ".".join(base + (node.module or "").split("."))
        else:
            source = node.module or ""
        source = source.strip(".")
        if not source or _package_of(source) == package:
            continue
        for alias in node.names:
            if _STATS_NAME.match(alias.name):
                foreign[alias.asname or alias.name] = source
    return foreign


class _ObsVisitor(ScopedVisitor):
    def __init__(self, module: Module, foreign: dict[str, str]):
        super().__init__(module)
        self._foreign = foreign

    def _flag(self, node: ast.AST, name: str, what: str) -> None:
        self.report(
            "OBS001",
            node,
            f"telemetry global {name!r} (imported from "
            f"{self._foreign[name]}) is mutated by {what} outside its "
            f"owning package; register a repro.obs instrument instead "
            f"of bumping another layer's counters",
            f"foreign-bump:{name}",
        )

    def _foreign_root(self, node: ast.AST) -> str | None:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name) and node.id in self._foreign:
            return node.id
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            root = self._foreign_root(node.func.value)
            if root is not None:
                self._flag(node, root, f"a .{node.func.attr}() call")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        root = self._foreign_root(node.target)
        if root is not None:
            self._flag(node, root, "an augmented assignment")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = self._foreign_root(target)
                if root is not None:
                    self._flag(node, root, "an attribute store")
        self.generic_visit(node)


class ObsChecker(Checker):
    """Cross-package mutation of STATS-style telemetry globals."""

    name = "obs"
    rules = {
        "OBS001": "STATS-style global mutated outside its owning package",
    }

    def applies_to(self, module_posix: str) -> bool:
        return not any(f in module_posix for f in _EXEMPT_FRAGMENTS)

    def check(self, module: Module) -> list[Finding]:
        dotted = _module_dotted(module.posix)
        if dotted is None:
            return []
        foreign = _foreign_stats_imports(module.tree, dotted)
        if not foreign:
            return []
        visitor = _ObsVisitor(module, foreign)
        visitor.visit(module.tree)
        return visitor.findings
