"""The project-specific checkers, one invariant each.

* :class:`~repro.analysis.lint.checkers.exact.ExactChecker` -- EXACT:
  exact-Fraction arithmetic on mass-value paths;
* :class:`~repro.analysis.lint.checkers.determ.DetermChecker` -- DETERM:
  serial-order, bit-for-bit deterministic output;
* :class:`~repro.analysis.lint.checkers.conc.ConcChecker` -- CONC:
  thread/fork safety of executor-reachable code;
* :class:`~repro.analysis.lint.checkers.backend.BackendChecker` --
  BACKEND: the ``StorageBackend`` contract;
* :class:`~repro.analysis.lint.checkers.obs.ObsChecker` -- OBS:
  telemetry instruments stay owned by their layer.
"""

from repro.analysis.lint.checkers.backend import BackendChecker
from repro.analysis.lint.checkers.conc import ConcChecker
from repro.analysis.lint.checkers.determ import DetermChecker
from repro.analysis.lint.checkers.exact import ExactChecker
from repro.analysis.lint.checkers.obs import ObsChecker

#: Checker classes in report order.
CHECKER_CLASSES = (ExactChecker, DetermChecker, ConcChecker, BackendChecker, ObsChecker)


def all_checkers():
    """Fresh instances of every checker (they carry per-run state)."""
    return [cls() for cls in CHECKER_CLASSES]


__all__ = [
    "BackendChecker",
    "ConcChecker",
    "DetermChecker",
    "ExactChecker",
    "ObsChecker",
    "CHECKER_CLASSES",
    "all_checkers",
]
