"""DETERM: serial-order, bit-for-bit determinism of observable output.

The PR 4 equivalence contract -- any executor x any partition count
reproduces the serial result *exactly* -- and the PR 5 storage contract
-- ``load(save(x))`` is bit-for-bit -- both die the moment an output
order rides on Python ``set`` iteration (hash-seed dependent across
processes) or on wall-clock/randomness.  Two rules:

* **DETERM001** -- iterating a set (a ``set``/``frozenset`` literal,
  constructor call, set operator expression, or a local/`self.`
  attribute assigned one) in an order-observable position: a ``for``
  loop or comprehension, or a direct ``list()``/``tuple()``/
  ``enumerate()``/``iter()`` materialization.  Wrap the set in
  ``sorted(...)`` to fix (the wrapped form is not flagged).
* **DETERM002** -- nondeterminism sources (``time``, ``random``,
  ``uuid``, ``secrets``, ``os.urandom``) in :mod:`repro.query`, which
  owns plan canonicalization and fingerprinting: a fingerprint that
  hashes the clock fingerprints nothing.

Membership tests, ``len``/``min``/``max``/``sum``/``any``/``all`` and
set algebra are order-insensitive and not flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import Checker, Module, ScopedVisitor, dotted_name
from repro.analysis.lint.findings import Finding

_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_OPERATORS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
_NONDETERMINISTIC_MODULES = {"time", "random", "uuid", "secrets"}
_NONDETERMINISTIC_CALLS = {"os.urandom", "datetime.now", "datetime.utcnow"}


def _describe(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover -- unparse covers all real nodes
        text = type(node).__name__
    return text if len(text) <= 60 else text[:57] + "..."


class _SetBindings(ast.NodeVisitor):
    """Collect names and ``self.`` attributes bound to set expressions.

    Function-local names are keyed by their enclosing def; ``self.X``
    attributes by their enclosing class (any method counts -- an
    attribute initialized as a set in ``__init__`` is a set everywhere
    in the class).  Rebinding a name to a non-set (``x = sorted(x)``)
    removes it, last writer wins per scope -- a deliberate, simple
    approximation.
    """

    def __init__(self):
        self.locals: dict[tuple[str, str], bool] = {}
        self.attrs: dict[tuple[str, str], bool] = {}
        self._defs: list[str] = []
        self._classes: list[str] = []

    def visit_FunctionDef(self, node):
        self._defs.append(node.name)
        self.generic_visit(node)
        self._defs.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node):
        self._classes.append(node.name)
        self.generic_visit(node)
        self._classes.pop()

    def _record(self, target: ast.AST, value: ast.AST | None) -> None:
        if value is None:
            return
        is_set = is_set_expr(value, None)
        if isinstance(target, ast.Name) and self._defs:
            self.locals[(".".join(self._defs), target.id)] = is_set
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._classes
        ):
            self.attrs[(self._classes[-1], target.attr)] = is_set

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record(node.target, node.value)
        self.generic_visit(node)


def is_set_expr(node: ast.AST, bindings: "_BoundLookup | None") -> bool:
    """Whether *node* evaluates to a set, as far as the lint can tell."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _SET_CONSTRUCTORS
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPERATORS):
        return is_set_expr(node.left, bindings) or is_set_expr(
            node.right, bindings
        )
    if bindings is not None:
        return bindings.is_set(node)
    return False


class _BoundLookup:
    """Resolve Name/self-attribute nodes against collected bindings."""

    def __init__(self, bindings: _SetBindings, defs: list[str], classes: list[str]):
        self._bindings = bindings
        self._defs = defs
        self._classes = classes

    def is_set(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and self._defs:
            return self._bindings.locals.get(
                (".".join(self._defs), node.id), False
            )
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self._classes
        ):
            return self._bindings.attrs.get(
                (self._classes[-1], node.attr), False
            )
        return False


class _DetermVisitor(ScopedVisitor):
    def __init__(self, module: Module, bindings: _SetBindings, in_query: bool):
        super().__init__(module)
        self._bindings = bindings
        self._in_query = in_query
        self._defs: list[str] = []
        self._classes: list[str] = []

    # Maintain def/class stacks in parallel with the qualname stack so
    # binding lookups resolve against the right scope.
    def visit_FunctionDef(self, node):
        self._defs.append(node.name)
        super().visit_FunctionDef(node)
        self._defs.pop()

    def visit_AsyncFunctionDef(self, node):
        self._defs.append(node.name)
        super().visit_AsyncFunctionDef(node)
        self._defs.pop()

    def visit_ClassDef(self, node):
        self._classes.append(node.name)
        super().visit_ClassDef(node)
        self._classes.pop()

    def _lookup(self) -> _BoundLookup:
        return _BoundLookup(self._bindings, self._defs, self._classes)

    def _flag_if_set(self, iterable: ast.AST, context: str) -> None:
        if is_set_expr(iterable, self._lookup()):
            self.report(
                "DETERM001",
                iterable,
                f"iteration over a set ({_describe(iterable)}) in {context}; "
                f"set order is hash-seed dependent -- wrap in sorted(...)",
                f"set-iter:{_describe(iterable)}",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_if_set(node.iter, "a for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._flag_if_set(generator.iter, "a comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple", "enumerate", "iter"}
            and node.args
        ):
            self._flag_if_set(node.args[0], f"{node.func.id}()")
        if self._in_query:
            name = dotted_name(node.func)
            if name in _NONDETERMINISTIC_CALLS:
                self.report(
                    "DETERM002",
                    node,
                    f"{name}() is nondeterministic and must not reach "
                    f"plan canonicalization or fingerprints",
                    f"nondet-call:{name}",
                )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        if self._in_query:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _NONDETERMINISTIC_MODULES:
                    self.report(
                        "DETERM002",
                        node,
                        f"import of nondeterminism source {alias.name!r} in "
                        f"repro.query (plan fingerprinting must be pure)",
                        f"nondet-import:{alias.name}",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._in_query and node.module:
            root = node.module.split(".")[0]
            if root in _NONDETERMINISTIC_MODULES:
                self.report(
                    "DETERM002",
                    node,
                    f"import from nondeterminism source {node.module!r} in "
                    f"repro.query (plan fingerprinting must be pure)",
                    f"nondet-import:{node.module}",
                )
        self.generic_visit(node)


class DetermChecker(Checker):
    """Unordered iteration and nondeterminism sources in output paths."""

    name = "determ"
    paths = ("repro/algebra/", "repro/query/", "repro/storage/", "repro/stream/")
    rules = {
        "DETERM001": "set iteration in an order-observable position",
        "DETERM002": "nondeterminism source reachable from fingerprinting",
    }

    def check(self, module: Module) -> list[Finding]:
        bindings = _SetBindings()
        bindings.visit(module.tree)
        visitor = _DetermVisitor(
            module, bindings, in_query="repro/query/" in module.posix
        )
        visitor.visit(module.tree)
        return visitor.findings
