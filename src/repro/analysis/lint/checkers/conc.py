"""CONC: fork/thread-safety of executor-reachable code.

The physical layer (:mod:`repro.exec`) runs partition tasks on thread
pools and ``fork`` process pools, so any module a task can reach is
concurrent code whether it planned to be or not.  Two rules:

* **CONC001** -- a module-level mutable global (a container literal or
  constructed instance) written from inside a function without holding a
  lock: attribute/subscript stores, augmented assignments (the classic
  lost-update ``STATS.counter += 1``) and known mutating method calls
  (``.append``/``.add``/``.update``/``.clear``/...).  Writes inside a
  ``with`` block whose context expression names a lock (a module-level
  ``threading.Lock()`` global, or any name containing ``lock``) are
  considered guarded; ``threading.local()`` instances are thread-private
  by construction and exempt.
* **CONC002** -- a closure captured into a process-pool task while
  holding a fork-unsafe resource: a nested def/lambda that references an
  enclosing variable bound from ``open(...)``, ``sqlite3.connect(...)``
  or a ``threading`` lock (by assignment or as a ``with ... as`` target),
  passed to ``.submit``/``.map``/``.apply_async``/``.imap*`` -- or to
  the *long-lived* warm-pool dispatches ``.submit_batch``/
  ``.map_encoded`` (:mod:`repro.exec.warmpool`), where the hazard is
  worse: the workers were forked long before the capture, so any handle
  state is stale in the worker by construction, not merely racy.
  Keyword arguments are scanned as well as positional ones.  File
  offsets, sqlite connections and held locks do not survive ``fork`` --
  the child inherits corrupt state.
* **CONC003** -- a closure capturing a **socket** (``socket.socket``,
  ``socket.create_connection``, ``socketpair``) shipped through the
  encoded batch dispatches ``.map_encoded``/``.submit_batch``.  Those
  dispatches cross a process -- with ``REPRO_EXECUTOR=remote``, a
  machine -- boundary by pickling the task, and sockets do not pickle
  at all: the capture is a guaranteed runtime failure (or a silent
  local fallback), not merely a race.  Plain ``.submit``/``.map``
  dispatches are deliberately out of scope: a thread pool shares the
  address space, where handing a socket to a task is legitimate.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.base import Checker, Module, ScopedVisitor, dotted_name
from repro.analysis.lint.findings import Finding

_LOCK_CONSTRUCTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
}
_MUTATING_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}
#: Pool-dispatch method names.  ``submit_batch``/``map_encoded`` are the
#: warm persistent pool's entry points (repro.exec.warmpool): their
#: submissions outlive any batch, so a captured handle is stale in the
#: long-ago-forked worker by construction.
_POOL_DISPATCH = {
    "submit",
    "map",
    "apply",
    "apply_async",
    "imap",
    "imap_unordered",
    "submit_batch",
    "map_encoded",
}
_FORK_UNSAFE_CONSTRUCTORS = {"open", "sqlite3.connect", "connect"}
#: Socket constructors (CONC003).  ``socket.socket`` and a bare
#: ``socket(...)`` both end in ``socket``; ``create_connection`` and
#: ``socketpair`` are the stdlib's other two ways to mint one.
_SOCKET_CONSTRUCTORS = {"socket", "create_connection", "socketpair"}
#: The encoded batch dispatches that pickle the task across a process
#: (or, remotely, a machine) boundary -- where a captured socket is a
#: guaranteed failure rather than a race.
_WIRE_DISPATCH = {"submit_batch", "map_encoded"}


def _call_tail(node: ast.AST) -> str | None:
    """The last identifier of a called Name/Attribute (``threading.Lock``
    -> ``Lock``), or ``None``."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None:
            return name.split(".")[-1]
    return None


class _ModuleGlobals(ast.NodeVisitor):
    """Classify module-level names: mutable, lock, or thread-local."""

    def __init__(self, tree: ast.Module):
        self.mutable: set[str] = set()
        self.locks: set[str] = set()
        for statement in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(statement, ast.Assign):
                targets, value = statement.targets, statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value:
                targets, value = [statement.target], statement.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                self._classify(target.id, value)

    def _classify(self, name: str, value: ast.expr) -> None:
        tail = _call_tail(value)
        if tail in _LOCK_CONSTRUCTORS:
            self.locks.add(name)
            return
        if tail == "local":  # threading.local(): thread-private, safe
            return
        if isinstance(
            value,
            (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
        ) or isinstance(value, ast.Call):
            self.mutable.add(name)


def _root_name(node: ast.AST) -> str | None:
    """The base Name of an attribute/subscript chain (``X.a[0].b`` -> X)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _ConcVisitor(ScopedVisitor):
    def __init__(self, module: Module, globals_: _ModuleGlobals):
        super().__init__(module)
        self._globals = globals_
        self._guard_depth = 0

    def _is_lock_expr(self, node: ast.AST) -> bool:
        name = dotted_name(node)
        if name is None:
            return False
        if name.split(".")[-1] in self._globals.locks or name in self._globals.locks:
            return True
        return "lock" in name.lower()

    def visit_With(self, node: ast.With) -> None:
        guarded = any(
            self._is_lock_expr(item.context_expr)
            or (
                isinstance(item.context_expr, ast.Call)
                and self._is_lock_expr(item.context_expr.func)
            )
            for item in node.items
        )
        if guarded:
            self._guard_depth += 1
        self.generic_visit(node)
        if guarded:
            self._guard_depth -= 1

    def _flag(self, node: ast.AST, name: str, what: str) -> None:
        self.report(
            "CONC001",
            node,
            f"unsynchronized {what} of module-level mutable global "
            f"{name!r} from executor-reachable code; guard with a lock "
            f"or use thread-local counters",
            f"global-write:{name}",
        )

    def _global_write_target(self, target: ast.AST) -> str | None:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return None
        root = _root_name(target)
        if root is not None and root in self._globals.mutable:
            return root
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.in_function() and self._guard_depth == 0:
            for target in node.targets:
                root = self._global_write_target(target)
                if root is not None:
                    self._flag(node, root, "write")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.in_function() and self._guard_depth == 0:
            root = self._global_write_target(node.target)
            if root is not None:
                self._flag(node, root, "read-modify-write")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        if self.in_function() and self._guard_depth == 0:
            for target in node.targets:
                root = self._global_write_target(target)
                if root is not None:
                    self._flag(node, root, "delete")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.in_function()
            and self._guard_depth == 0
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            root = _root_name(node.func.value)
            if root is not None and root in self._globals.mutable:
                self._flag(node, root, f".{node.func.attr}() mutation")
        self.generic_visit(node)


class _ForkCaptureVisitor(ScopedVisitor):
    """CONC002: per-function scan for fork-unsafe closure captures."""

    def visit_FunctionDef(self, node):
        self._scan_function(node)
        super().visit_FunctionDef(node)

    def visit_AsyncFunctionDef(self, node):
        self._scan_function(node)
        super().visit_AsyncFunctionDef(node)

    @staticmethod
    def _scope_nodes(func: ast.AST):
        """Walk *func*'s own scope: stop at nested def/lambda boundaries."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _risky_origin(value: ast.AST) -> str | None:
        """The constructor name when *value* builds a fork-unsafe handle."""
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        tail = name.split(".")[-1] if name else None
        if (
            name in _FORK_UNSAFE_CONSTRUCTORS
            or tail in _FORK_UNSAFE_CONSTRUCTORS
            or tail in _LOCK_CONSTRUCTORS
        ):
            return name or tail or "?"
        return None

    @staticmethod
    def _socket_origin(value: ast.AST) -> str | None:
        """The constructor name when *value* builds a socket (CONC003)."""
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        tail = name.split(".")[-1] if name else None
        if tail in _SOCKET_CONSTRUCTORS:
            return name or tail or "?"
        return None

    def _scan_function(self, func: ast.AST) -> None:
        scope = list(self._scope_nodes(func))
        risky: dict[str, str] = {}
        sockets: dict[str, str] = {}
        for statement in scope:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    socket_origin = self._socket_origin(statement.value)
                    if socket_origin is not None:
                        sockets[target.id] = socket_origin
                        continue
                    origin = self._risky_origin(statement.value)
                    if origin is not None:
                        risky[target.id] = origin
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                # `with open(...) as handle:` binds the same fork-unsafe
                # resource as an assignment would.
                for item in statement.items:
                    if not isinstance(item.optional_vars, ast.Name):
                        continue
                    socket_origin = self._socket_origin(item.context_expr)
                    if socket_origin is not None:
                        sockets[item.optional_vars.id] = socket_origin
                        continue
                    origin = self._risky_origin(item.context_expr)
                    if origin is not None:
                        risky[item.optional_vars.id] = origin
        if not risky and not sockets:
            return
        tainted = {**risky, **sockets}
        closures: dict[str, tuple[ast.AST, set[str]]] = {}
        for inner in scope:
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                captured = {
                    leaf.id
                    for leaf in ast.walk(inner)
                    if isinstance(leaf, ast.Name) and leaf.id in tainted
                }
                if captured:
                    closures[inner.name] = (inner, captured)
        for call in scope:
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _POOL_DISPATCH
            ):
                continue
            operands = list(call.args) + [
                keyword.value for keyword in call.keywords
            ]
            for arg in operands:
                if isinstance(arg, ast.Name) and arg.id in closures:
                    _inner, captured = closures[arg.id]
                    self._report_capture(call, arg.id, captured, risky, sockets)
                elif isinstance(arg, ast.Lambda):
                    captured = {
                        leaf.id
                        for leaf in ast.walk(arg)
                        if isinstance(leaf, ast.Name) and leaf.id in tainted
                    }
                    if captured:
                        self._report_capture(
                            call, "<lambda>", captured, risky, sockets
                        )

    def _report_capture(
        self,
        call: ast.Call,
        closure_name: str,
        captured: set[str],
        risky: dict[str, str],
        sockets: dict[str, str],
    ) -> None:
        """One dispatch of one closure: emit CONC002 and/or CONC003."""
        label = (
            f"closure {closure_name!r}" if closure_name != "<lambda>"
            else "lambda"
        )
        fork_unsafe = sorted(name for name in captured if name in risky)
        if fork_unsafe:
            resources = ", ".join(
                f"{name} (from {risky[name]})" for name in fork_unsafe
            )
            self.report(
                "CONC002",
                call,
                f"{label} captures fork-unsafe resource(s) {resources} "
                f"and is dispatched to a worker pool; pass paths/keys "
                f"and reopen in the task instead",
                f"fork-capture:{closure_name}",
            )
        captured_sockets = sorted(name for name in captured if name in sockets)
        if captured_sockets and call.func.attr in _WIRE_DISPATCH:
            resources = ", ".join(
                f"{name} (from {sockets[name]})" for name in captured_sockets
            )
            self.report(
                "CONC003",
                call,
                f"{label} captures socket(s) {resources} and is shipped "
                f"through .{call.func.attr}(), which pickles the task "
                f"across a process or machine boundary; sockets never "
                f"survive that hop -- pass the address and connect "
                f"inside the task instead",
                f"socket-capture:{closure_name}",
            )


class ConcChecker(Checker):
    """Unsynchronized global writes and fork-unsafe pool captures."""

    name = "conc"
    paths = (
        "repro/ds/",
        "repro/exec/",
        "repro/stream/",
        "repro/storage/",
        "repro/algebra/",
        "repro/integration/",
        "repro/obs/",
    )
    rules = {
        "CONC001": "unsynchronized write to a module-level mutable global",
        "CONC002": "fork-unsafe resource captured into a pool task",
        "CONC003": "socket captured into a wire-shipped batch task",
    }

    def check(self, module: Module) -> list[Finding]:
        globals_ = _ModuleGlobals(module.tree)
        findings: list[Finding] = []
        if globals_.mutable:
            visitor = _ConcVisitor(module, globals_)
            visitor.visit(module.tree)
            findings.extend(visitor.findings)
        captures = _ForkCaptureVisitor(module)
        captures.visit(module.tree)
        findings.extend(captures.findings)
        return findings
