"""Baselines: committed debt, explicit and shrinking-only.

A baseline file lists findings that existed when the analyzer was
adopted (or that are accepted debt), by their stable keys.  The runner
suppresses baselined findings -- but a baseline entry whose finding no
longer occurs is *stale* and fails the run: the file must be
regenerated (``--write-baseline``) when debt is paid down, so it can
never accrete entries that silently mask future regressions at the same
key.
"""

from __future__ import annotations

import json

from pathlib import Path

from repro.analysis.lint.findings import Finding

FORMAT_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that cannot be read or has the wrong shape."""


def load_baseline(path: str | Path) -> dict[str, dict]:
    """Read a baseline file into ``{key: entry}`` (empty if absent)."""
    location = Path(path)
    if not location.exists():
        return {}
    try:
        document = json.loads(location.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {location}: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != FORMAT_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise BaselineError(
            f"baseline {location} is not a version-{FORMAT_VERSION} "
            f"reprolint baseline"
        )
    entries: dict[str, dict] = {}
    for entry in document["findings"]:
        if not isinstance(entry, dict) or "key" not in entry:
            raise BaselineError(
                f"baseline {location} holds a malformed entry: {entry!r}"
            )
        entries[str(entry["key"])] = entry
    return entries


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write *findings* as the new baseline (sorted, stable layout)."""
    document = {
        "version": FORMAT_VERSION,
        "findings": [
            {
                "key": finding.key,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in sorted(findings, key=lambda f: f.key)
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def split_by_baseline(
    findings: list[Finding], baseline: dict[str, dict]
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Partition into (new, baselined) findings and stale entries."""
    matched_keys = {finding.key for finding in findings}
    new = [f for f in findings if f.key not in baseline]
    baselined = [f for f in findings if f.key in baseline]
    stale = [
        entry for key, entry in baseline.items() if key not in matched_keys
    ]
    return new, baselined, stale
