"""reprolint: invariant-enforcing static analysis for this codebase.

The library's correctness rests on invariants the paper's algebra
demands but Python does not enforce: exact Fraction arithmetic on mass
values, deterministic (serial-order, bit-for-bit) results across every
executor and partition count, thread/fork safety of everything an
executor can reach, and the ``StorageBackend`` contract.  The property
suites check these after the fact; this package checks them at the
source level, before a violation ships:

* a small checker framework (:mod:`~repro.analysis.lint.base`) --
  AST visitors with stable scope anchors, per-rule findings, an inline
  ``# repro: ignore[RULE]`` escape hatch;
* four checkers (:mod:`~repro.analysis.lint.checkers`) -- EXACT,
  DETERM, CONC, BACKEND;
* a committed baseline (:mod:`~repro.analysis.lint.baseline`) making
  accepted debt explicit, with staleness treated as an error;
* a runner/CLI (:mod:`~repro.analysis.lint.runner`) --
  ``python -m repro.analysis`` and ``make lint-analysis``, wired into
  CI next to ruff.
"""

from repro.analysis.lint.base import Checker, Module
from repro.analysis.lint.baseline import load_baseline, save_baseline
from repro.analysis.lint.checkers import CHECKER_CLASSES, all_checkers
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.runner import AnalysisResult, analyze, main

__all__ = [
    "AnalysisResult",
    "Checker",
    "CHECKER_CLASSES",
    "Finding",
    "Module",
    "all_checkers",
    "analyze",
    "load_baseline",
    "main",
    "save_baseline",
]
