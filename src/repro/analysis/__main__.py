"""``python -m repro.analysis``: run the reprolint static analyzer."""

import sys

from repro.analysis.lint.runner import main

if __name__ == "__main__":
    sys.exit(main())
