"""Integration quality metrics.

The union/merge reports say what happened during one merge; these
metrics describe the *state* of a relation afterwards:

* per-attribute uncertainty: mean ignorance (OMEGA mass), mean
  nonspecificity and discord (bits) across tuples;
* membership statistics: how many tuples are certain, the mean
  ``sn`` and the mean ignorance gap ``sp - sn``.

The conflict-study example and the ablation benchmarks read these to
compare integration strategies quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OperationError
from repro.ds.measures import discord, nonspecificity
from repro.model.evidence import EvidenceSet
from repro.model.relation import ExtendedRelation


@dataclass(frozen=True)
class AttributeUncertainty:
    """Mean uncertainty of one attribute across a relation."""

    attribute: str
    mean_ignorance: float
    mean_nonspecificity: float
    mean_discord: float


@dataclass
class QualityReport:
    """Relation-level quality digest."""

    relation: str
    n_tuples: int
    certain_tuples: int
    mean_sn: float
    mean_membership_gap: float
    attributes: list[AttributeUncertainty] = field(default_factory=list)

    def attribute(self, name: str) -> AttributeUncertainty:
        """The entry for one attribute."""
        for entry in self.attributes:
            if entry.attribute == name:
                return entry
        raise OperationError(f"no uncertainty entry for attribute {name!r}")

    def summary(self) -> str:
        """One-line digest."""
        return (
            f"{self.relation}: {self.n_tuples} tuples "
            f"({self.certain_tuples} certain), mean sn {self.mean_sn:.3f}, "
            f"mean sp-sn gap {self.mean_membership_gap:.3f}"
        )


def attribute_uncertainty(
    relation: ExtendedRelation, name: str
) -> AttributeUncertainty:
    """Mean ignorance/nonspecificity/discord of attribute *name*."""
    if name not in relation.schema:
        raise OperationError(
            f"relation {relation.name!r} has no attribute {name!r}"
        )
    ignorance_total = 0.0
    nonspec_total = 0.0
    discord_total = 0.0
    count = 0
    for etuple in relation:
        value = etuple.value(name)
        if not isinstance(value, EvidenceSet):
            value = etuple.evidence(name)
        count += 1
        ignorance_total += float(value.ignorance())
        nonspec_total += nonspecificity(value.mass_function)
        discord_total += discord(value.mass_function)
    if count == 0:
        return AttributeUncertainty(name, 0.0, 0.0, 0.0)
    return AttributeUncertainty(
        attribute=name,
        mean_ignorance=ignorance_total / count,
        mean_nonspecificity=nonspec_total / count,
        mean_discord=discord_total / count,
    )


def relation_quality(relation: ExtendedRelation) -> QualityReport:
    """The full quality digest of a relation.

    >>> from repro.datasets.restaurants import table_ra
    >>> report = relation_quality(table_ra())
    >>> report.n_tuples, report.certain_tuples
    (6, 5)
    """
    n_tuples = len(relation)
    certain = sum(1 for t in relation if t.membership.is_certain)
    mean_sn = (
        sum(float(t.membership.sn) for t in relation) / n_tuples
        if n_tuples
        else 0.0
    )
    mean_gap = (
        sum(float(t.membership.m_unknown) for t in relation) / n_tuples
        if n_tuples
        else 0.0
    )
    attributes = [
        attribute_uncertainty(relation, name)
        for name in relation.schema.uncertain_names
    ]
    return QualityReport(
        relation=relation.name,
        n_tuples=n_tuples,
        certain_tuples=certain,
        mean_sn=mean_sn,
        mean_membership_gap=mean_gap,
        attributes=attributes,
    )
