"""Analysis over extended relations.

Downstream consumers of an integrated database often cannot handle
evidence sets -- a report generator wants one value per cell, and a data
administrator wants to know *how good* the integration is.  This package
provides both endpoints:

* :mod:`repro.analysis.decisions` -- collapse an extended relation into
  a crisp (classical) one under a decision strategy (max-belief,
  max-plausibility, or pignistic), with per-cell confidence;
* :mod:`repro.analysis.quality` -- relation-level uncertainty metrics
  (mean ignorance, nonspecificity/discord totals, membership statistics)
  and merge-report digests.

It also hosts :mod:`repro.analysis.lint` (reprolint), the repo's own
invariant-enforcing static analyzer -- ``python -m repro.analysis``
checks the source tree for exactness (EXACT), determinism (DETERM),
thread/fork-safety (CONC) and storage-contract (BACKEND) violations.
"""

from repro.analysis.decisions import CrispRow, DecisionPolicy, decide
from repro.analysis.quality import (
    QualityReport,
    attribute_uncertainty,
    relation_quality,
)

__all__ = [
    "decide",
    "DecisionPolicy",
    "CrispRow",
    "relation_quality",
    "attribute_uncertainty",
    "QualityReport",
]
