"""O(delta) persistence: sqlite dirty shards and log autocompaction.

The exactness contract is absolute -- whatever the incremental layout
does, ``load_relation`` must return the stream's published relation bit
for bit, same tuple order -- while the *cost* contract is what this PR
adds: sqlite flush bytes scale with the changed hash shards, not the
relation size, and an autocompacting journal stays bounded under a
steady update load.
"""

import sqlite3

import pytest

from repro.datasets.restaurants import table_ra
from repro.integration import TupleMerger
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.obs import registry
from repro.storage import open_backend
from repro.stream import StreamEngine
from repro.stream.changelog import BatchDelta

COLOURS = ("red", "green", "blue")


def _schema(name="R"):
    domain = EnumeratedDomain("colour", COLOURS)
    return RelationSchema(
        name,
        [
            Attribute("name", TextDomain("name"), key=True),
            Attribute("colour", domain, uncertain=True),
        ],
    )


def _etuple(schema, key: str, colour: str) -> ExtendedTuple:
    domain = schema.attribute("colour").domain
    return ExtendedTuple(
        schema,
        {"name": key, "colour": EvidenceSet.definite(colour, domain)},
    )


def _engine(backend, schema):
    return StreamEngine(
        schema,
        name=schema.name,
        backend=backend,
        merger=TupleMerger(on_conflict="vacuous"),
    )


def _assert_exact_reload(backend, engine):
    loaded = backend.load_relation(engine.relation.name)
    assert loaded == engine.relation
    assert list(loaded.keys()) == list(engine.relation.keys())


def _bytes_written():
    return registry().counter("storage.sqlite.bytes_written").value


class TestSqliteDirtyShards:
    def test_flush_cycles_reload_exactly(self, tmp_path):
        """Inserts, updates and removals through many flushes: the store
        equals the published relation after every one of them."""
        schema = _schema()
        with open_backend(f"sqlite:{tmp_path / 'r.sqlite'}") as backend:
            engine = _engine(backend, schema)
            for index in range(12):
                engine.upsert(
                    "a", _etuple(schema, f"e{index}", COLOURS[index % 3])
                )
            engine.flush()
            _assert_exact_reload(backend, engine)
            # Update a few entities (the source replaces its assertion).
            for index in (0, 5, 11):
                engine.upsert(
                    "a", _etuple(schema, f"e{index}", COLOURS[(index + 1) % 3])
                )
            engine.flush()
            _assert_exact_reload(backend, engine)
            # Remove some, insert fresh ones past the end.
            engine.retract("a", ("e3",))
            engine.retract("a", ("e7",))
            engine.upsert("a", _etuple(schema, "late-1", "red"))
            engine.flush()
            _assert_exact_reload(backend, engine)
            engine.upsert("a", _etuple(schema, "late-2", "blue"))
            engine.retract("a", ("e0",))
            engine.flush()
            _assert_exact_reload(backend, engine)
        # ... and the final state survives a reopen.
        with open_backend(f"sqlite:{tmp_path / 'r.sqlite'}") as reopened:
            loaded = reopened.load_relation("R")
            assert loaded == engine.relation
            assert list(loaded.keys()) == list(engine.relation.keys())

    def test_flush_bytes_scale_with_changed_shards_not_relation_size(
        self, tmp_path
    ):
        schema = _schema()
        with open_backend(f"sqlite:{tmp_path / 'r.sqlite'}") as backend:
            engine = _engine(backend, schema)
            for index in range(64):
                engine.upsert(
                    "a", _etuple(schema, f"entity-{index:03d}", "red")
                )
            before = _bytes_written()
            engine.flush()
            full = _bytes_written() - before
            assert full > 0
            # One updated entity dirties one of the 16 hash shards: the
            # flush rewrites ~1/16th of the rows, nowhere near the full
            # relation payload.
            engine.upsert("a", _etuple(schema, "entity-000", "green"))
            before = _bytes_written()
            engine.flush()
            delta = _bytes_written() - before
            assert 0 < delta < full / 4
            _assert_exact_reload(backend, engine)

    def test_quiet_batch_writes_zero_payload_bytes(self, tmp_path):
        """An empty delta against a stamped stream advances the
        watermark without touching a single row."""
        relation = table_ra()
        with open_backend(f"sqlite:{tmp_path / 'r.sqlite'}") as backend:
            first = BatchDelta(
                batch=1,
                watermark=6,
                events=6,
                inserted=tuple(relation.keys()),
                updated=(),
                removed=(),
                conflicted=(),
            )
            backend.write_batch("RA", first, [], relation)
            before = _bytes_written()
            quiet = BatchDelta(
                batch=2,
                watermark=9,
                events=0,
                inserted=(),
                updated=(),
                removed=(),
                conflicted=(),
            )
            backend.write_batch("RA", quiet, [], relation)
            assert _bytes_written() == before
            assert backend.stream_watermark("RA") == 9

    def test_mid_order_insert_falls_back_to_a_full_rewrite(self, tmp_path):
        """A delta the shard layout cannot express exactly (an entity
        re-entering mid-order) rewrites the whole relation stamped --
        and still reloads bit for bit."""
        relation = table_ra()
        keys = list(relation.keys())
        mid_key = keys[2]
        with open_backend(f"sqlite:{tmp_path / 'r.sqlite'}") as backend:
            first = BatchDelta(
                batch=1,
                watermark=len(keys),
                events=len(keys),
                inserted=tuple(keys),
                updated=(),
                removed=(),
                conflicted=(),
            )
            backend.write_batch("RA", first, [], relation)

            full_rewrites = []
            original = backend._insert_relation
            backend._insert_relation = lambda *a, **k: (
                full_rewrites.append(a) or original(*a, **k)
            )
            resurrection = BatchDelta(
                batch=2,
                watermark=len(keys) + 1,
                events=1,
                inserted=(mid_key,),
                updated=(),
                removed=(),
                conflicted=(),
            )
            backend.write_batch("RA", resurrection, [], relation)
            backend._insert_relation = original
            assert len(full_rewrites) == 1
            loaded = backend.load_relation("RA")
            assert loaded == relation
            assert list(loaded.keys()) == keys

    def test_pre_shard_store_gains_the_key_column(self, tmp_path):
        """A store created before the ``key_json`` migration opens,
        gains the column on first write, and streams exactly."""
        path = tmp_path / "old.sqlite"
        connection = sqlite3.connect(str(path))
        connection.executescript(
            """
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            CREATE TABLE relations (
                name TEXT PRIMARY KEY, position INTEGER NOT NULL,
                partitions INTEGER NOT NULL DEFAULT 0,
                schema_json TEXT NOT NULL
            );
            CREATE TABLE tuples (
                relation TEXT NOT NULL, partition INTEGER NOT NULL DEFAULT 0,
                position INTEGER NOT NULL, row_json TEXT NOT NULL,
                PRIMARY KEY (relation, position)
            );
            INSERT INTO meta VALUES ('format_version', '1');
            INSERT INTO meta VALUES ('name', 'db');
            INSERT INTO meta VALUES ('catalog_version', '0');
            """
        )
        connection.commit()
        connection.close()
        schema = _schema()
        with open_backend(f"sqlite:{path}") as backend:
            engine = _engine(backend, schema)
            engine.upsert("a", _etuple(schema, "e0", "red"))
            engine.flush()
            columns = {
                row[1]
                for row in backend._db.execute("PRAGMA table_info(tuples)")
            }
            assert "key_json" in columns
            _assert_exact_reload(backend, engine)

    def test_null_key_rows_force_one_full_rewrite_then_go_incremental(
        self, tmp_path
    ):
        """Rows written by a non-stream save carry NULL keys; the first
        dirty-shard attempt detects them, rewrites stamped, and the
        *next* flush is incremental again."""
        relation = table_ra()
        keys = list(relation.keys())
        with open_backend(f"sqlite:{tmp_path / 'r.sqlite'}") as backend:
            backend.save_relation(relation)  # flat rows: key_json NULL
            # Forge the stream marker an interrupted migration would
            # leave behind: shards recorded, rows unstamped.
            with backend._db:
                backend._set_meta("stream:RA:shards", 16)
            update = BatchDelta(
                batch=1,
                watermark=1,
                events=1,
                inserted=(),
                updated=(keys[0],),
                removed=(),
                conflicted=(),
            )
            backend.write_batch("RA", update, [], relation)
            loaded = backend.load_relation("RA")
            assert loaded == relation
            assert list(loaded.keys()) == keys
            nulls = backend._db.execute(
                "SELECT COUNT(*) FROM tuples "
                "WHERE relation = 'RA' AND key_json IS NULL"
            ).fetchone()[0]
            assert nulls == 0
            # Now stamped: a one-entity update stays O(delta).
            before = _bytes_written()
            backend.write_batch(
                "RA",
                BatchDelta(
                    batch=2,
                    watermark=2,
                    events=1,
                    inserted=(),
                    updated=(keys[0],),
                    removed=(),
                    conflicted=(),
                ),
                [],
                relation,
            )
            delta = _bytes_written() - before
            full = sum(
                len(row)
                for (row,) in backend._db.execute(
                    "SELECT row_json FROM tuples WHERE relation = 'RA'"
                )
            )
            assert 0 < delta < full


class TestLogAutocompaction:
    def _relation(self, rounds: int) -> ExtendedRelation:
        schema = _schema("R")
        return ExtendedRelation(
            schema,
            [_etuple(schema, f"e{i}", COLOURS[rounds % 3]) for i in range(6)],
        )

    def test_journal_stays_bounded_under_resaves(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOCOMPACT", "1.5")
        monkeypatch.setenv("REPRO_AUTOCOMPACT_MIN_BYTES", "1")
        compactions = registry().counter("storage.log.autocompactions")
        before = compactions.value
        with open_backend(f"log:{tmp_path / 'wal.jsonl'}") as backend:
            backend.save_relation(self._relation(0))
            single = backend._file_bytes()
            for round_number in range(1, 30):
                backend.save_relation(self._relation(round_number))
            # An append-only journal would hold ~30 copies; compaction
            # keeps it within the configured growth ratio of one.
            assert backend._file_bytes() < 3 * single
            assert compactions.value > before
            final = backend.load_relation("R")
        # The compacted journal still replays the exact final state.
        with open_backend(f"log:{tmp_path / 'wal.jsonl'}") as reopened:
            assert reopened.load_relation("R") == final

    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_AUTOCOMPACT", raising=False)
        with open_backend(f"log:{tmp_path / 'wal.jsonl'}") as backend:
            backend.save_relation(self._relation(0))
            single = backend._file_bytes()
            for round_number in range(1, 10):
                backend.save_relation(self._relation(round_number))
            assert backend._file_bytes() > 5 * single  # history kept

    def test_named_flag_values_and_floor(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOCOMPACT", "yes")
        monkeypatch.setenv("REPRO_AUTOCOMPACT_MIN_BYTES", "10000000")
        with open_backend(f"log:{tmp_path / 'wal.jsonl'}") as backend:
            assert backend._autocompact == pytest.approx(4.0)
            backend.save_relation(self._relation(0))
            single = backend._file_bytes()
            for round_number in range(1, 10):
                backend.save_relation(self._relation(round_number))
            # Under the byte floor nothing compacts, whatever the ratio.
            assert backend._file_bytes() > 5 * single

    def test_streamed_batches_autocompact_too(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOCOMPACT", "1.5")
        monkeypatch.setenv("REPRO_AUTOCOMPACT_MIN_BYTES", "1")
        schema = _schema()
        with open_backend(f"log:{tmp_path / 'wal.jsonl'}") as backend:
            engine = _engine(backend, schema)
            for index in range(6):
                engine.upsert("a", _etuple(schema, f"e{index}", "red"))
            engine.flush()
            single = backend._file_bytes()
            for round_number in range(40):
                engine.upsert(
                    "a", _etuple(schema, "e0", COLOURS[round_number % 3])
                )
                engine.flush()
            assert backend._file_bytes() < 4 * single
            relation, watermark = engine.relation, engine.watermark
        with open_backend(f"log:{tmp_path / 'wal.jsonl'}") as reopened:
            recovered = reopened.recover_stream("R")
            assert recovered.relation == relation
            assert list(recovered.relation.keys()) == list(relation.keys())
            assert recovered.watermark == watermark
