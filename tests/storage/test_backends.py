"""Tests for the pluggable storage-backend layer.

Engine-specific behavior (URL resolution, catalog versions, SQLite
point-load selectivity, log compaction and crash tolerance); the
cross-engine bit-for-bit equivalence properties live in
``test_serialization_properties.py``.
"""

import json

import pytest

from repro.datasets.restaurants import table_m_a, table_ra, table_rb
from repro.errors import CatalogError, SerializationError
from repro.storage import (
    Database,
    JsonBackend,
    create_database,
    open_backend,
    open_database,
    resolve_backend,
    save_database,
)
from repro.storage.backends import default_scheme, split_url

ALL_SCHEMES = ("json", "sqlite", "log")


def url_for(scheme, tmp_path, name="store"):
    return f"{scheme}:{tmp_path / name}"


class TestUrlResolution:
    def test_explicit_scheme_wins(self):
        assert split_url("sqlite:some/file.json") == ("sqlite", "some/file.json")
        assert resolve_backend("sqlite:x.json").scheme == "sqlite"

    def test_bare_path_has_no_scheme(self):
        assert split_url("plain/path.json") == (None, "plain/path.json")

    def test_unknown_prefix_is_treated_as_path(self):
        # "C" is not a registered scheme; the whole string is a path.
        assert split_url("C:file.json") == (None, "C:file.json")

    @pytest.mark.parametrize(
        ("location", "scheme"),
        [
            ("db.json", "json"),
            ("db.sqlite", "sqlite"),
            ("db.sqlite3", "sqlite"),
            ("db.db", "sqlite"),
            ("db.jsonl", "log"),
            ("db.log", "log"),
            ("db.anything", "json"),
        ],
    )
    def test_extension_inference(self, location, scheme, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE", raising=False)
        assert default_scheme(location) == scheme

    def test_env_var_overrides_extension(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "sqlite")
        assert resolve_backend("db.json").scheme == "sqlite"

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "quantum")
        with pytest.raises(SerializationError, match="REPRO_STORAGE"):
            resolve_backend("db.json")

    def test_backend_instance_passes_through(self, tmp_path):
        backend = JsonBackend(tmp_path / "x.json")
        assert resolve_backend(backend) is backend

    def test_empty_location_rejected(self):
        with pytest.raises(SerializationError, match="names no path"):
            resolve_backend("json:")


class TestBackendContract:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_operations_require_open(self, scheme, tmp_path):
        backend = resolve_backend(url_for(scheme, tmp_path))
        with pytest.raises(SerializationError, match="not open"):
            backend.save_relation(table_ra())
        with pytest.raises(SerializationError, match="not open"):
            backend.load_database()

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_catalog_version_bumps_per_mutation(self, scheme, tmp_path):
        with open_backend(url_for(scheme, tmp_path)) as backend:
            assert backend.catalog_version() == 0
            backend.save_relation(table_ra())
            assert backend.catalog_version() == 1
            backend.save_relation(table_rb())
            assert backend.catalog_version() == 2
            backend.delete_relation("RA")
            assert backend.catalog_version() == 3
            assert backend.list_relations() == ("RB",)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_load_database_seeds_catalog_version(self, scheme, tmp_path):
        url = url_for(scheme, tmp_path)
        with open_backend(url) as backend:
            backend.save_relation(table_ra())
            backend.save_relation(table_m_a())
        db = open_database(url)
        assert db.version == db.backend.catalog_version() == 2
        db.close()

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_unknown_relation_names_stored_ones(self, scheme, tmp_path):
        with open_backend(url_for(scheme, tmp_path)) as backend:
            backend.save_relation(table_ra())
            with pytest.raises(SerializationError, match="stored: RA"):
                backend.load_relation("GHOST")
            with pytest.raises(SerializationError, match="no relation"):
                backend.delete_relation("GHOST")

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_missing_store_is_clean_error(self, scheme, tmp_path):
        with open_backend(url_for(scheme, tmp_path)) as backend:
            with pytest.raises(SerializationError):
                backend.load_database()
        with pytest.raises(SerializationError, match="no database"):
            open_database(url_for(scheme, tmp_path, "other"))

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_database_name_round_trips(self, scheme, tmp_path):
        url = url_for(scheme, tmp_path)
        db = create_database(url, "tourist_bureau")
        db.add(table_ra())
        db.persist()
        db.close()
        reopened = Database.open(url)
        assert reopened.name == "tourist_bureau"
        reopened.close()


class TestDatabasePersistence:
    def test_persist_requires_backend(self):
        with pytest.raises(CatalogError, match="no attached storage backend"):
            Database("d").persist()

    def test_reload_reports_changed_names(self, tmp_path):
        url = url_for("sqlite", tmp_path)
        db = create_database(url, "d")
        db.add(table_ra())
        db.add(table_rb())
        db.persist()

        writer = Database.open(url)
        writer.drop("RB")
        writer.add(table_m_a())
        writer.persist()
        writer.close()

        changed = db.reload()
        assert changed == frozenset({"RB", "M_A"})
        assert db.names() == ("M_A", "RA")
        assert db.version >= db.backend.catalog_version()
        db.close()

    def test_reload_is_noop_when_unchanged(self, tmp_path):
        url = url_for("log", tmp_path)
        db = create_database(url, "d")
        db.add(table_ra())
        db.persist()
        assert db.reload() == frozenset()
        db.close()

    def test_reopened_database_invalidates_stale_results(self, tmp_path):
        """The backend-reported catalog version keys session
        invalidation: after another writer persists, reload() makes the
        session re-execute instead of serving the fingerprinted result."""
        url = url_for("sqlite", tmp_path)
        db = create_database(url, "d")
        db.add(table_ra())
        db.persist()

        session = db.session()
        before = session.execute("SELECT rname FROM RA")
        assert len(before) == 6

        writer = Database.open(url)
        smaller = writer.get("RA").filter(lambda t: t.key() != ("wok",))
        writer.add(smaller, replace=True)
        writer.persist()
        writer.close()

        db.reload()
        after = session.execute("SELECT rname FROM RA")
        assert len(after) == 5
        db.close()


class TestJsonBackendCompatibility:
    def test_pre_backend_files_still_load(self, tmp_path):
        """Files written by the plain serialization helpers (PR <= 4,
        no catalog_version field) load unchanged through JsonBackend."""
        path = tmp_path / "legacy.json"
        db = Database("legacy")
        db.add(table_ra())
        save_database(db, path)
        document = json.loads(path.read_text())
        assert "catalog_version" not in document
        loaded = open_database(f"json:{path}")
        assert loaded.version == 0
        assert loaded.get("RA") == table_ra()
        loaded.close()

    def test_first_save_creates_versioned_document(self, tmp_path):
        path = tmp_path / "fresh.json"
        with open_backend(f"json:{path}") as backend:
            backend.save_relation(table_ra())
        document = json.loads(path.read_text())
        assert document["catalog_version"] == 1
        assert document["format_version"] == 1

    def test_zero_byte_file_counts_as_empty_store(self, tmp_path):
        """Saving over a zero-byte file starts a fresh store instead of
        choking on 'invalid JSON at char 0'."""
        path = tmp_path / "empty.json"
        path.touch()
        with open_backend(f"json:{path}") as backend:
            assert not backend.exists()
            assert backend.catalog_version() == 0
            backend.save_relation(table_ra())
            assert backend.load_relation("RA") == table_ra()


class TestSqliteBackend:
    def test_point_load_skips_other_relations(self, tmp_path, monkeypatch):
        """load_relation deserializes only the requested relation's
        rows -- the defining advantage over the monolithic JSON file."""
        import repro.storage.backends.sqlite as sqlite_module

        url = url_for("sqlite", tmp_path)
        db = Database("d")
        db.add(table_ra())
        db.add(table_rb())
        db.add(table_m_a())
        with open_backend(url) as backend:
            backend.save_database(db)

            decoded = []
            original = sqlite_module._tuple_from_json

            def counting(row, schema):
                decoded.append(schema.name)
                return original(row, schema)

            monkeypatch.setattr(
                sqlite_module, "_tuple_from_json", counting
            )
            relation = backend.load_relation("M_A")
        assert relation == table_m_a()
        assert decoded == ["M_A"] * len(table_m_a())

    def test_corrupt_store_is_clean_error(self, tmp_path):
        path = tmp_path / "garbage.sqlite"
        path.write_bytes(b"this is not a sqlite database")
        with open_backend(f"sqlite:{path}") as backend:
            with pytest.raises((SerializationError, Exception)):
                backend.load_database()


class TestLogBackend:
    def test_saves_append(self, tmp_path):
        url = url_for("log", tmp_path)
        with open_backend(url) as backend:
            backend.save_relation(table_ra())
            size_one = backend.path.stat().st_size
            backend.save_relation(table_ra())
            assert backend.path.stat().st_size > size_one
            # Last write wins on load.
            assert backend.load_relation("RA") == table_ra()

    def test_torn_tail_is_ignored(self, tmp_path):
        url = url_for("log", tmp_path)
        with open_backend(url) as backend:
            backend.save_relation(table_ra())
        path = resolve_backend(url).path
        with open(path, "a") as handle:
            handle.write('{"record": "relation", "docu')  # crash mid-append
        with open_backend(url) as backend:
            assert backend.load_relation("RA") == table_ra()

    def test_appending_after_torn_tail_truncates_it(self, tmp_path):
        """The first append of a session drops a torn tail instead of
        welding the new record onto the fragment (which would corrupt a
        mid-file line and poison every later read)."""
        url = url_for("log", tmp_path)
        with open_backend(url) as backend:
            backend.save_relation(table_ra())
        path = resolve_backend(url).path
        with open(path, "a") as handle:
            handle.write('{"record": "relation", "docu')
        with open_backend(url) as backend:
            backend.save_relation(table_rb())
            assert backend.list_relations() == ("RA", "RB")
        # Every record on disk is intact again.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_corrupt_middle_record_raises(self, tmp_path):
        url = url_for("log", tmp_path)
        with open_backend(url) as backend:
            backend.save_relation(table_ra())
        path = resolve_backend(url).path
        lines = path.read_text().splitlines()
        lines.insert(1, "{broken")
        path.write_text("\n".join(lines) + "\n")
        with open_backend(url) as backend:
            with pytest.raises(SerializationError, match="invalid JSON record"):
                backend.load_relation("RA")

    def test_compaction_drops_history_keeps_state(self, tmp_path):
        url = url_for("log", tmp_path)
        with open_backend(url) as backend:
            for _ in range(5):
                backend.save_relation(table_ra())
            backend.save_relation(table_rb())
            backend.delete_relation("RB")
            version = backend.catalog_version()
            before = backend.path.stat().st_size
            report = backend.compact()
            assert report["bytes_after"] < before
            # Representation changed; catalog state did not.
            assert backend.catalog_version() == version
            assert backend.list_relations() == ("RA",)
            assert backend.load_relation("RA") == table_ra()
