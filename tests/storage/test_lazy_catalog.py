"""Lazy catalog open: name stubs first, rows on first access.

``Database.open`` over a backend that advertises ``lazy_catalog``
(SQLite) must not parse a single tuple until someone asks for a
relation -- and once it does, every catalog semantic (names, versions,
invalidation, ``reload()``, persistence) must be indistinguishable from
the historical eager load.  ``REPRO_LAZY_CATALOG=0`` restores eager
loading outright.
"""

from __future__ import annotations

import pytest

from repro.datasets.restaurants import table_m_a, table_ra, table_rb
from repro.errors import CatalogError
from repro.obs.registry import registry
from repro.storage import Database, open_backend, open_database


def _loads() -> tuple[int, int]:
    """(full database loads, single-relation point loads) for sqlite."""
    collected = registry().collect()
    return (
        collected.get("storage.sqlite.loads", 0),
        collected.get("storage.sqlite.point_loads", 0),
    )


@pytest.fixture
def store_url(tmp_path):
    """A SQLite store holding RA and RB."""
    url = f"sqlite:{tmp_path / 'lazy.sqlite'}"
    db = Database("lazydb")
    db.add(table_ra())
    db.add(table_rb())
    backend = open_backend(url)
    backend.save_database(db)
    backend.close()
    return url


def test_open_holds_stubs_without_reading_rows(store_url):
    loads_before = _loads()
    db = open_database(store_url)
    try:
        # The catalog knows its names and size, but no relation has
        # been materialized -- nothing parsed any rows yet.
        assert db.names() == ("RA", "RB")
        assert len(db) == 2
        assert "RA" in db and "RB" in db
        assert db._relations == {}
        assert _loads() == loads_before
        db.get("RA")
        assert _loads() == (loads_before[0], loads_before[1] + 1)
    finally:
        db.close()


def test_first_access_materializes_exactly_that_relation(store_url):
    db = open_database(store_url)
    try:
        version_before = db.version
        assert db.get("RA") == table_ra()
        # Materialization is silent: no version bump, RB still a stub.
        assert db.version == version_before
        assert set(db._relations) == {"RA"}
        assert db.get("RB") == table_rb()
        assert db.relations() == (table_ra(), table_rb())
    finally:
        db.close()


def test_unknown_name_error_lists_pending_stubs(store_url):
    db = open_database(store_url)
    try:
        with pytest.raises(CatalogError) as caught:
            db.get("RC")
        message = str(caught.value)
        assert "RA" in message and "RB" in message
    finally:
        db.close()


def test_version_is_seeded_from_the_backend(store_url, monkeypatch):
    lazy = open_database(store_url)
    try:
        monkeypatch.setenv("REPRO_LAZY_CATALOG", "0")
        eager = open_database(store_url)
        try:
            assert lazy.version == eager.version
        finally:
            eager.close()
    finally:
        lazy.close()


def test_replacing_a_stub_bumps_the_version(store_url):
    db = open_database(store_url)
    try:
        version = db.version
        db.add(table_ra().with_name("RA"), replace=True)
        assert db.version > version
        assert "RA" in db.changed_names_since(version)
    finally:
        db.close()


def test_dropping_a_stub_never_reads_its_rows(store_url):
    loads_before = _loads()
    db = open_database(store_url)
    try:
        version = db.version
        db.drop("RB")
        assert _loads() == loads_before
        assert db.names() == ("RA",)
        assert db.version > version
        with pytest.raises(CatalogError):
            db.get("RB")
    finally:
        db.close()


def test_reload_semantics_are_unchanged(store_url):
    db = open_database(store_url)
    try:
        assert db.get("RA") == table_ra()  # materialize one of two
        # Another writer replaces RA, drops RB, adds M_A.
        writer = open_database(store_url)
        try:
            writer.drop("RB")
            writer.add(table_m_a())
            writer.add(table_rb().with_name("RA"), replace=True)
            writer.persist()
        finally:
            writer.close()
        touched = db.reload()
        assert touched == frozenset({"RA", "RB", "M_A"})
        assert db.get("RA") == table_rb().with_name("RA")
        assert db.get("M_A") == table_m_a()
        assert "RB" not in db
    finally:
        db.close()


def test_reload_keeps_untouched_stubs_silent(store_url):
    db = open_database(store_url)
    try:
        # Nothing materialized, nothing changed in the store: reload
        # must not report (or notify) anything.
        events = []
        db.add_listener(events.append)
        assert db.reload() == frozenset()
        assert events == []
        assert db.get("RA") == table_ra()
    finally:
        db.close()


def test_persist_round_trips_a_lazy_catalog(store_url, tmp_path):
    db = open_database(store_url)
    try:
        db.persist()  # materializes everything, writes all of it back
        copy = open_database(store_url)
        try:
            assert copy.get("RA") == table_ra()
            assert copy.get("RB") == table_rb()
        finally:
            copy.close()
    finally:
        db.close()


def test_close_materializes_stubs_first(store_url):
    # The historical contract: a loaded-then-closed database still
    # holds every relation, even though the backend is gone.
    db = open_database(store_url)
    db.close()
    assert db.get("RA") == table_ra()
    assert db.get("RB") == table_rb()


def test_env_zero_restores_eager_open(store_url, monkeypatch):
    monkeypatch.setenv("REPRO_LAZY_CATALOG", "0")
    db = open_database(store_url)
    try:
        assert set(db._relations) == {"RA", "RB"}
        assert db._pending == set()
    finally:
        db.close()


def test_json_backend_stays_eager(tmp_path):
    url = f"json:{tmp_path / 'eager.json'}"
    source = Database("eagerdb")
    source.add(table_ra())
    backend = open_backend(url)
    backend.save_database(source)
    backend.close()
    db = open_database(url)
    try:
        assert set(db._relations) == {"RA"}
        assert db._pending == set()
    finally:
        db.close()
