"""Tests for the database catalog, serialization and formatting."""

import json
from fractions import Fraction

import pytest

from repro.errors import CatalogError, SerializationError
from repro.storage import (
    Database,
    database_from_json,
    database_to_json,
    format_relation,
    format_tuple,
    load_database,
    load_relation,
    relation_from_json,
    relation_to_json,
    save_database,
    save_relation,
)
from repro.storage.serialization import (
    domain_from_json,
    domain_to_json,
    schema_from_json,
    schema_to_json,
)
from repro.model.domain import (
    AnyDomain,
    BooleanDomain,
    EnumeratedDomain,
    NumericDomain,
    TextDomain,
)
from repro.datasets.restaurants import (
    restaurant_schema,
    table_m_a,
    table_ra,
    table_rb,
    table_rm_a,
)


class TestDatabase:
    def test_add_get(self):
        db = Database("d")
        db.add(table_ra())
        assert db.get("RA").name == "RA"
        assert "RA" in db
        assert len(db) == 1

    def test_duplicate_rejected(self):
        db = Database()
        db.add(table_ra())
        with pytest.raises(CatalogError, match="already exists"):
            db.add(table_ra())

    def test_replace(self):
        db = Database()
        db.add(table_ra())
        db.add(table_ra(), replace=True)
        assert len(db) == 1

    def test_unknown_get(self):
        with pytest.raises(CatalogError, match="no relation"):
            Database().get("missing")

    def test_drop(self):
        db = Database()
        db.add(table_ra())
        db.drop("RA")
        assert "RA" not in db
        with pytest.raises(CatalogError):
            db.drop("RA")

    def test_names_sorted(self):
        db = Database()
        db.add(table_rb())
        db.add(table_ra())
        assert db.names() == ("RA", "RB")

    def test_iteration(self):
        db = Database()
        db.add(table_ra())
        assert [r.name for r in db] == ["RA"]


class TestDomainSerialization:
    @pytest.mark.parametrize(
        "domain",
        [
            EnumeratedDomain("e", ["x", "y"]),
            NumericDomain("n", low=0, high=9, integral=True),
            NumericDomain("n2"),
            TextDomain("t"),
            TextDomain("t2", pattern=r"\d+"),
            BooleanDomain("b"),
            AnyDomain("a"),
        ],
    )
    def test_round_trip(self, domain):
        assert domain_from_json(domain_to_json(domain)) == domain

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            domain_from_json({"kind": "quantum", "name": "q"})


class TestSchemaSerialization:
    def test_round_trip(self):
        schema = restaurant_schema()
        assert schema_from_json(schema_to_json(schema)) == schema

    def test_missing_field_rejected(self):
        with pytest.raises(SerializationError):
            schema_from_json({"name": "R"})


class TestRelationSerialization:
    @pytest.mark.parametrize(
        "make_relation", [table_ra, table_rb, table_m_a, table_rm_a]
    )
    def test_round_trip_paper_tables(self, make_relation):
        relation = make_relation()
        document = relation_to_json(relation)
        # Must survive a JSON text round-trip as well.
        recovered = relation_from_json(json.loads(json.dumps(document)))
        assert recovered == relation

    def test_exact_fractions_preserved(self):
        document = relation_to_json(table_ra())
        recovered = relation_from_json(document)
        garden = recovered.get("garden")
        assert garden.evidence("rating").mass({"ex"}) == Fraction(1, 3)

    def test_reloaded_evidence_stays_compiled(self):
        """Enumerated evidence compiles eagerly on load, and every tuple
        shares one interned frame per attribute (see repro.ds.kernel)."""
        recovered = relation_from_json(relation_to_json(table_ra()))
        interned = {
            etuple.evidence("rating").mass_function.compiled().interned
            for etuple in recovered
        }
        assert all(
            etuple.evidence("rating").is_compiled for etuple in recovered
        )
        assert len(interned) == 1

    def test_open_domain_evidence_loads_uncompiled(self):
        """Unenumerable domains have no frame to intern; loading leaves
        them on the symbolic path."""
        recovered = relation_from_json(relation_to_json(table_ra()))
        sample = next(iter(recovered))
        assert not sample.evidence("street").is_compiled
        assert sample.evidence("rating").is_compiled

    def test_version_checked(self):
        document = relation_to_json(table_ra())
        document["format_version"] = 99
        with pytest.raises(SerializationError, match="version"):
            relation_from_json(document)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "ra.json"
        save_relation(table_ra(), path)
        assert load_relation(path) == table_ra()

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match=str(path)):
            load_relation(path)

    def test_missing_file_is_serialization_error(self, tmp_path):
        """A missing file surfaces as SerializationError naming the
        path, not a raw FileNotFoundError leaking to CLI users."""
        path = tmp_path / "absent.json"
        with pytest.raises(SerializationError, match=str(path)):
            load_relation(path)


class TestPartitionedSerialization:
    def test_partitioned_layout_round_trips(self):
        relation = table_ra()
        document = relation_to_json(relation, partitions=3)
        assert document["partitions"] == 3
        assert len(document["tuple_partitions"]) == 3
        assert "tuples" not in document
        recovered = relation_from_json(document)
        assert recovered.same_tuples(relation)

    def test_partition_layout_is_preserved(self, tmp_path):
        """A reloaded partitioned relation re-shards into exactly the
        shards that were saved (same shard membership, same order)."""
        relation = table_ra()
        path = tmp_path / "ra.json"
        save_relation(relation, path, partitions=4)
        recovered = load_relation(path)
        saved_shards = relation.partitions(4)
        loaded_shards = recovered.partitions(4)
        for saved, loaded in zip(saved_shards, loaded_shards):
            assert list(saved.keys()) == list(loaded.keys())
            assert saved.same_tuples(loaded)

    def test_single_partition_uses_flat_layout(self):
        document = relation_to_json(table_ra(), partitions=1)
        assert "tuples" in document and "partitions" not in document


class TestDatabaseSerialization:
    def test_round_trip(self, tmp_path):
        db = Database("tourist")
        db.add(table_ra())
        db.add(table_rb())
        path = tmp_path / "db.json"
        save_database(db, path)
        recovered = load_database(path)
        assert recovered.name == "tourist"
        assert recovered.names() == ("RA", "RB")
        assert recovered.get("RA") == table_ra()

    def test_document_round_trip(self):
        db = Database("d")
        db.add(table_rm_a())
        recovered = database_from_json(database_to_json(db))
        assert recovered.get("RM_A") == table_rm_a()

    def test_missing_file_is_serialization_error(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(SerializationError, match=str(path)):
            load_database(path)

    def test_bad_json_names_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2,")
        with pytest.raises(SerializationError, match=str(path)):
            load_database(path)


class TestFormatting:
    def test_header_uses_display_names(self):
        text = format_relation(table_ra())
        header = text.splitlines()[1]
        assert "yspeciality" in header
        assert "(sn,sp)" in header
        assert "rname" in header

    def test_rows_render_evidence(self):
        text = format_relation(table_ra())
        assert "[hu^0.25, si^0.5, Ω^0.25]" in text.replace("0.250", "0.25")

    def test_definite_values_render_bare(self):
        cells = format_tuple(table_ra().get("wok"))
        assert cells["yspeciality"] == "si"
        assert cells["street"] == "wash.ave."

    def test_membership_column(self):
        cells = format_tuple(table_ra().get("mehl"))
        assert cells["(sn,sp)"] == "(0.5,0.5)"

    def test_custom_title(self):
        text = format_relation(table_ra(), title="Table 1 upper half")
        assert text.splitlines()[0] == "Table 1 upper half"

    def test_alignment(self):
        lines = format_relation(table_ra()).splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to the same width
