"""Property-based serialization tests: round trips on generated data.

The document codec is exercised directly (JSON text round trips), and
the same generated relations then drive the **backend equivalence
contract**: every storage engine (json / sqlite / log), with and
without the partition-sharded layout, over both exact-Fraction and
float evidence, must reproduce relations bit-for-bit through a
save/load cycle.
"""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.serialization import (
    database_from_json,
    database_to_json,
    relation_from_json,
    relation_to_json,
)
from repro.storage.backends import SCHEMES, resolve_backend
from repro.storage.database import Database
from repro.datasets.generators import SyntheticConfig, synthetic_pair

_SUFFIX = {"json": "json", "sqlite": "sqlite", "log": "jsonl"}


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=15),
    seed=st.integers(min_value=0, max_value=999),
    exact=st.booleans(),
)
def test_relation_round_trip_on_generated_data(n, seed, exact):
    """Serialize -> JSON text -> deserialize is the identity, for both
    exact-fraction and float masses."""
    config = SyntheticConfig(n_tuples=n, seed=seed, exact=exact, ignorance=0.4)
    relation, _ = synthetic_pair(config)
    document = json.loads(json.dumps(relation_to_json(relation)))
    assert relation_from_json(document) == relation


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_database_round_trip_on_generated_data(seed):
    config = SyntheticConfig(n_tuples=8, seed=seed)
    left, right = synthetic_pair(config)
    db = Database("generated")
    db.add(left)
    db.add(right)
    document = json.loads(json.dumps(database_to_json(db)))
    recovered = database_from_json(document)
    assert recovered.names() == db.names()
    for name in db.names():
        assert recovered.get(name) == db.get(name)


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
class TestBackendRoundTripProperties:
    """load(save(db)) is the identity on every storage engine."""

    def _url(self, scheme: str, directory: str) -> str:
        return f"{scheme}:{Path(directory) / f'store.{_SUFFIX[scheme]}'}"

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=999),
        exact=st.booleans(),
    )
    def test_database_round_trips_bit_for_bit(self, scheme, n, seed, exact):
        """Tuple order, exact Fractions, float reprs and schema domains
        all survive; enumerated evidence reloads compiled."""
        config = SyntheticConfig(
            n_tuples=n, seed=seed, exact=exact, ignorance=0.4
        )
        left, right = synthetic_pair(config)
        db = Database("generated")
        db.add(left)
        db.add(right)
        with tempfile.TemporaryDirectory() as directory:
            with resolve_backend(self._url(scheme, directory)) as backend:
                backend.save_database(db)
                recovered = backend.load_database()
        assert recovered.name == db.name
        assert recovered.names() == db.names()
        for name in db.names():
            original = db.get(name)
            reloaded = recovered.get(name)
            assert reloaded == original
            assert list(reloaded.keys()) == list(original.keys())
            assert reloaded.schema == original.schema
            for etuple in reloaded:
                assert etuple.evidence("category").is_compiled

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=999),
        exact=st.booleans(),
        partitions=st.integers(min_value=2, max_value=5),
    )
    def test_partitioned_layout_round_trips(
        self, scheme, n, seed, exact, partitions
    ):
        """A partition-sharded save reloads into the identical hash-shard
        layout (same shard membership, same order) on every engine."""
        config = SyntheticConfig(
            n_tuples=n, seed=seed, exact=exact, ignorance=0.4
        )
        relation, _ = synthetic_pair(config)
        with tempfile.TemporaryDirectory() as directory:
            with resolve_backend(self._url(scheme, directory)) as backend:
                backend.save_relation(relation, partitions=partitions)
                reloaded = backend.load_relation(relation.name)
                assert backend.catalog()[relation.name] == {
                    "tuples": n,
                    "partitions": partitions,
                }
        assert reloaded.same_tuples(relation)
        saved_shards = relation.partitions(partitions)
        loaded_shards = reloaded.partitions(partitions)
        for saved, loaded in zip(saved_shards, loaded_shards):
            assert list(saved.keys()) == list(loaded.keys())
            assert saved.same_tuples(loaded)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=999))
    def test_relation_level_updates_round_trip(self, scheme, seed):
        """save_relation upserts into an existing store; the untouched
        relation is unharmed and the replaced one is exact."""
        config = SyntheticConfig(n_tuples=6, seed=seed)
        left, right = synthetic_pair(config)
        replacement, _ = synthetic_pair(
            SyntheticConfig(n_tuples=9, seed=seed + 1)
        )
        replacement = replacement.with_name(left.name)
        db = Database("generated")
        db.add(left)
        db.add(right)
        with tempfile.TemporaryDirectory() as directory:
            with resolve_backend(self._url(scheme, directory)) as backend:
                backend.save_database(db)
                backend.save_relation(replacement)
                assert backend.load_relation(left.name) == replacement
                assert backend.load_relation(right.name) == right
