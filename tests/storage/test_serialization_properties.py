"""Property-based serialization tests: round trips on generated data."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.serialization import (
    database_from_json,
    database_to_json,
    relation_from_json,
    relation_to_json,
)
from repro.storage.database import Database
from repro.datasets.generators import SyntheticConfig, synthetic_pair


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=15),
    seed=st.integers(min_value=0, max_value=999),
    exact=st.booleans(),
)
def test_relation_round_trip_on_generated_data(n, seed, exact):
    """Serialize -> JSON text -> deserialize is the identity, for both
    exact-fraction and float masses."""
    config = SyntheticConfig(n_tuples=n, seed=seed, exact=exact, ignorance=0.4)
    relation, _ = synthetic_pair(config)
    document = json.loads(json.dumps(relation_to_json(relation)))
    assert relation_from_json(document) == relation


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_database_round_trip_on_generated_data(seed):
    config = SyntheticConfig(n_tuples=8, seed=seed)
    left, right = synthetic_pair(config)
    db = Database("generated")
    db.add(left)
    db.add(right)
    document = json.loads(json.dumps(database_to_json(db)))
    recovered = database_from_json(document)
    assert recovered.names() == db.names()
    for name in db.names():
        assert recovered.get(name) == db.get(name)
