"""Algebraic laws of the extended operations.

Beyond Theorem 1, the operations obey (and, where the paper's semantics
demand it, *fail to obey*) classical laws; pinning these down guards the
semantics against refactoring drift:

* selection fusion: cascaded selections = conjunction selection;
* selection commutes with projection (when attributes are retained);
* theta duality: ``A < B`` has exactly the support of ``B > A``;
* union/intersection interplay;
* documented NON-laws: union is not idempotent (self-combination
  sharpens evidence), selection does not distribute over union.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    And,
    IsPredicate,
    ThetaPredicate,
    intersection,
    lit,
    project,
    select,
    union,
)
from repro.algebra.support import theta_support
from repro.model.evidence import EvidenceSet
from repro.datasets.generators import SyntheticConfig, synthetic_pair
from repro.datasets.restaurants import table_ra, table_rb
from tests.conftest import mass_functions


class TestSelectionLaws:
    def test_fusion(self):
        """select(select(R,P1),P2) == select(R, P1 and P2)."""
        ra = table_ra()
        p1 = IsPredicate("speciality", {"mu"})
        p2 = IsPredicate("rating", {"ex"})
        cascaded = select(select(ra, p1), p2)
        fused = select(ra, And(p1, p2))
        assert cascaded.same_tuples(fused)

    def test_commutes(self):
        """Selection order within a conjunction is irrelevant."""
        ra = table_ra()
        p1 = IsPredicate("speciality", {"mu"})
        p2 = IsPredicate("rating", {"ex"})
        assert select(select(ra, p1), p2).same_tuples(
            select(select(ra, p2), p1)
        )

    def test_commutes_with_projection(self):
        """project(select(R,P)) == select(project(R),P) when P's
        attributes survive the projection."""
        ra = table_ra()
        predicate = IsPredicate("rating", {"ex"})
        names = ["rname", "rating"]
        left = project(select(ra, predicate), names)
        right = select(project(ra, names), predicate)
        assert left.same_tuples(right)

    def test_does_not_distribute_over_union(self):
        """Documented NON-law: selecting before the union changes the
        combination inputs (this is why the planner never pushes)."""
        ra, rb = table_ra(), table_rb()
        predicate = IsPredicate("rating", {"ex"})
        after = select(union(ra, rb, name="U"), predicate)
        before = union(select(ra, predicate), select(rb, predicate), name="U")
        assert not after.same_tuples(before)

    def test_idempotent(self):
        """Selecting twice with the same predicate weakens membership
        again -- selection is NOT idempotent on uncertain predicates
        (each application multiplies the support in)."""
        ra = table_ra()
        predicate = IsPredicate("speciality", {"si"})
        once = select(ra, predicate)
        twice = select(once, predicate)
        garden_once = once.get("garden").membership
        garden_twice = twice.get("garden").membership
        assert garden_twice.sn == garden_once.sn * Fraction(1, 2)


class TestThetaDuality:
    CASES = [
        ("<", ">"),
        (">", "<"),
        ("<=", ">="),
        (">=", "<="),
        ("=", "="),
    ]

    @pytest.mark.parametrize("op,mirror", CASES)
    def test_support_mirrors(self, op, mirror):
        a = EvidenceSet({frozenset({1, 4}): "3/5", frozenset({2, 6}): "2/5"})
        b = EvidenceSet({frozenset({2, 4}): "4/5", frozenset({5}): "1/5"})
        assert theta_support(a, b, op) == theta_support(b, a, mirror)

    @given(m=mass_functions(universe=(1, 2, 3, 4), max_focal=3))
    def test_mirror_property_generated(self, m):
        a = EvidenceSet(m)
        b = EvidenceSet({frozenset({2}): "1/2", frozenset({3, 4}): "1/2"})
        for op, mirror in self.CASES:
            assert theta_support(a, b, op) == theta_support(b, a, mirror)


class TestUnionIntersectionLaws:
    def test_intersection_refines_union(self):
        ra, rb = table_ra(), table_rb()
        consensus = intersection(ra, rb, name="X")
        integrated = union(ra, rb, name="X")
        for t in consensus:
            assert integrated.get(t.key()) == t

    def test_union_not_idempotent(self):
        """R union R is NOT R: combining a relation with itself counts
        the same evidence twice and sharpens it -- the paper's
        independence assumption makes self-union meaningless, and this
        test documents the behaviour."""
        ra = table_ra()
        doubled = union(ra, table_ra("RA2"), name="RA")
        garden = doubled.get("garden").evidence("speciality")
        original = ra.get("garden").evidence("speciality")
        assert garden.mass({"si"}) > original.mass({"si"})

    def test_union_with_empty_is_identity(self):
        from repro.model.relation import ExtendedRelation

        ra = table_ra()
        empty = ExtendedRelation(table_rb("RB").schema, [])
        assert union(ra, empty, name="RA").same_tuples(ra)

    def test_intersection_with_empty_is_empty(self):
        from repro.model.relation import ExtendedRelation

        ra = table_ra()
        empty = ExtendedRelation(table_rb("RB").schema, [])
        assert len(intersection(ra, empty)) == 0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_union_commutative_on_random_workloads(seed):
    config = SyntheticConfig(n_tuples=10, seed=seed, ignorance=1.0)
    left, right = synthetic_pair(config)
    forward = union(left, right, name="U")
    backward = union(right, left, name="U")
    assert forward.same_tuples(backward)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_selection_fusion_on_random_workloads(seed):
    config = SyntheticConfig(n_tuples=15, seed=seed)
    left, _ = synthetic_pair(config)
    p1 = IsPredicate("category", {"c0", "c1", "c2"})
    p2 = ThetaPredicate("score", ">=", lit(3))
    assert select(select(left, p1), p2).same_tuples(select(left, And(p1, p2)))
