"""Tests for the predicate AST and its support calculus."""

from fractions import Fraction

import pytest

from repro.errors import PredicateError
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, NumericDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.schema import RelationSchema
from repro.algebra.predicates import (
    And,
    AttributeOperand,
    IsPredicate,
    LiteralOperand,
    Not,
    Or,
    ThetaPredicate,
    attr,
    lit,
)


@pytest.fixture
def schema():
    return RelationSchema(
        "R",
        [
            Attribute("name", TextDomain("name"), key=True),
            Attribute(
                "colour",
                EnumeratedDomain("colour", ["red", "green", "blue"]),
                uncertain=True,
            ),
            Attribute(
                "size", EnumeratedDomain("size", [1, 2, 3, 4, 5]), uncertain=True
            ),
        ],
    )


@pytest.fixture
def row(schema):
    return ExtendedTuple(
        schema,
        {
            "name": "thing",
            "colour": "[red^0.5, {green,blue}^0.25, Ω^0.25]",
            "size": {frozenset({2}): "1/2", frozenset({3, 4}): "1/2"},
        },
    )


class TestIsPredicate:
    def test_support(self, row):
        support = IsPredicate("colour", {"red"}).support(row)
        assert support.as_tuple() == (Fraction(1, 2), Fraction(3, 4))

    def test_multi_value(self, row):
        support = IsPredicate("colour", {"green", "blue"}).support(row)
        assert support.as_tuple() == (Fraction(1, 4), Fraction(1, 2))

    def test_needs_values(self):
        with pytest.raises(PredicateError):
            IsPredicate("colour", set())

    def test_needs_attribute_name(self):
        with pytest.raises(PredicateError):
            IsPredicate("", {"x"})

    def test_attributes(self):
        assert IsPredicate("colour", {"red"}).attributes() == frozenset({"colour"})

    def test_validate_against(self, schema):
        IsPredicate("colour", {"red"}).validate_against(schema)
        with pytest.raises(PredicateError, match="unknown attribute"):
            IsPredicate("ghost", {"red"}).validate_against(schema)

    def test_builder_sugar(self, row):
        support = attr("colour").is_in({"red"}).support(row)
        assert support.sn == Fraction(1, 2)


class TestThetaPredicate:
    def test_attribute_vs_literal(self, row):
        predicate = ThetaPredicate("size", "<=", lit(2))
        # {2} <= 2 definitely (1/2); {3,4} <= 2 never.
        assert predicate.support(row).as_tuple() == (Fraction(1, 2), Fraction(1, 2))

    def test_attribute_vs_attribute(self, schema):
        both = ExtendedTuple(
            schema,
            {"name": "x", "colour": "red", "size": {frozenset({3}): 1}},
        )
        predicate = ThetaPredicate("size", "=", attr("size"))
        assert predicate.support(both).as_tuple() == (1, 1)

    def test_operator_sugar(self, row):
        predicate = attr("size") >= lit(3)
        support = predicate.support(row)
        # {3,4} >= 3 definitely (1/2); {2} >= 3 never.
        assert support.as_tuple() == (Fraction(1, 2), Fraction(1, 2))

    def test_evidence_literal(self, row):
        predicate = ThetaPredicate("size", "<", lit("[{5}^1]"))
        # 2 < 5 and {3,4} < 5: both certain.
        assert predicate.support(row).as_tuple() == (1, 1)

    def test_ne_rejected(self):
        with pytest.raises(PredicateError):
            _ = attr("size") != lit(3)

    def test_attributes_collects_both_sides(self):
        predicate = ThetaPredicate("a", "<", attr("b"))
        assert predicate.attributes() == frozenset({"a", "b"})

    def test_literal_has_no_attributes(self):
        assert lit(5).attributes() == frozenset()

    def test_invalid_operator(self):
        with pytest.raises(PredicateError):
            ThetaPredicate("a", "!=", lit(1))


class TestCompound:
    def test_and_multiplicative(self, row):
        p = And(IsPredicate("colour", {"red"}), IsPredicate("size", {2}))
        support = p.support(row)
        # (1/2, 3/4) x (1/2, 1/2)
        assert support.as_tuple() == (Fraction(1, 4), Fraction(3, 8))

    def test_and_flattens(self):
        a = IsPredicate("colour", {"red"})
        b = IsPredicate("size", {2})
        c = IsPredicate("size", {3})
        assert len(And(And(a, b), c).parts) == 3

    def test_and_needs_two(self):
        with pytest.raises(PredicateError):
            And(IsPredicate("a", {"x"}))

    def test_ampersand_operator(self, row):
        p = IsPredicate("colour", {"red"}) & IsPredicate("size", {2})
        assert isinstance(p, And)

    def test_or_disjunctive(self, row):
        p = Or(IsPredicate("colour", {"red"}), IsPredicate("size", {2}))
        support = p.support(row)
        # sn = 1/2 + 1/2 - 1/4 = 3/4; sp = 3/4 + 1/2 - 3/8 = 7/8.
        assert support.as_tuple() == (Fraction(3, 4), Fraction(7, 8))

    def test_or_flattens_and_validates(self):
        a = IsPredicate("colour", {"red"})
        b = IsPredicate("size", {2})
        assert len(Or(Or(a, b), a).parts) == 3
        with pytest.raises(PredicateError):
            Or(a)

    def test_not_inverts_interval(self, row):
        p = Not(IsPredicate("colour", {"red"}))
        assert p.support(row).as_tuple() == (Fraction(1, 4), Fraction(1, 2))

    def test_not_requires_predicate(self):
        with pytest.raises(PredicateError):
            Not("colour is red")

    def test_attributes_union(self):
        p = And(IsPredicate("a", {"x"}), IsPredicate("b", {"y"})) | IsPredicate(
            "c", {"z"}
        )
        assert p.attributes() == frozenset({"a", "b", "c"})

    def test_de_morgan_on_supports(self, row):
        """not(A and B) == (not A) or (not B) at the support level."""
        a = IsPredicate("colour", {"red"})
        b = IsPredicate("size", {2})
        left = Not(And(a, b)).support(row)
        right = Or(Not(a), Not(b)).support(row)
        assert left == right


class TestOperandResolution:
    def test_attribute_operand_reads_tuple(self, row):
        evidence = AttributeOperand("colour").resolve(row)
        assert evidence.mass({"red"}) == Fraction(1, 2)

    def test_literal_operand_constant(self, row):
        evidence = LiteralOperand(5).resolve(row)
        assert evidence.definite_value() == 5

    def test_bracket_string_parses(self):
        operand = LiteralOperand("[a^0.5, b^0.5]")
        assert operand.evidence.mass({"a"}) == Fraction(1, 2)

    def test_plain_string_stays_scalar(self):
        operand = LiteralOperand("plain")
        assert operand.evidence.definite_value() == "plain"
