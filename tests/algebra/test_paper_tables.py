"""Exact reproduction of every worked table of the paper.

These tests are the headline of the reproduction: Tables 2-5 and the
inline Section 2.1/2.2 examples must come out *exactly* (as fractions),
and their 3-digit decimal renderings must match the digits the paper
prints.
"""

from fractions import Fraction

import pytest

from repro.ds.frame import OMEGA
from repro.ds.notation import format_mass_value
from repro.algebra import And, IsPredicate, project, select, union, union_with_report
from repro.datasets.restaurants import (
    expected_table2,
    expected_table3,
    expected_table4,
    expected_table5,
    table_ra,
    table_rb,
)


@pytest.fixture
def ra():
    return table_ra()


@pytest.fixture
def rb():
    return table_rb()


class TestTable2:
    """select[sn>0, speciality is {si}](R_A)."""

    def test_exact_reproduction(self, ra):
        result = select(ra, IsPredicate("speciality", {"si"}))
        assert result.same_tuples(expected_table2())

    def test_only_garden_and_wok_qualify(self, ra):
        result = select(ra, IsPredicate("speciality", {"si"}))
        assert sorted(t.key()[0] for t in result) == ["garden", "wok"]

    def test_garden_membership_is_half_three_quarters(self, ra):
        result = select(ra, IsPredicate("speciality", {"si"}))
        garden = result.get("garden")
        assert garden.membership.as_tuple() == (Fraction(1, 2), Fraction(3, 4))
        assert garden.membership.format(style="decimal") == "(0.5,0.75)"

    def test_wok_membership_fully_certain(self, ra):
        result = select(ra, IsPredicate("speciality", {"si"}))
        assert result.get("wok").membership.is_certain

    def test_attribute_values_retained(self, ra):
        """Footnote 4: unlike DeMichiel, selection keeps original values."""
        result = select(ra, IsPredicate("speciality", {"si"}))
        garden = result.get("garden")
        assert garden.evidence("speciality") == ra.get("garden").evidence(
            "speciality"
        )


class TestTable3:
    """select[sn>0, (speciality is {mu}) and (rating is {ex})](R_A)."""

    @pytest.fixture
    def result(self, ra):
        predicate = And(
            IsPredicate("speciality", {"mu"}), IsPredicate("rating", {"ex"})
        )
        return select(ra, predicate)

    def test_exact_reproduction(self, result):
        assert result.same_tuples(expected_table3())

    def test_only_mughalai_restaurants_qualify(self, result):
        assert sorted(t.key()[0] for t in result) == ["ashiana", "mehl"]

    def test_mehl_membership(self, result):
        # (0.32, 0.32) in the paper; exactly (8/25, 8/25).
        assert result.get("mehl").membership.as_tuple() == (
            Fraction(8, 25),
            Fraction(8, 25),
        )

    def test_ashiana_membership(self, result):
        # (0.9, 1) in the paper.
        assert result.get("ashiana").membership.as_tuple() == (
            Fraction(9, 10),
            Fraction(1),
        )


class TestTable4:
    """R_A union_(rname) R_B -- the integrated relation."""

    @pytest.fixture
    def merged(self, ra, rb):
        return union(ra, rb)

    def test_exact_reproduction(self, merged):
        assert merged.same_tuples(expected_table4())

    def test_paper_printed_digits_garden_speciality(self, merged):
        """19/29, 8/29, 2/29 print as the paper's 0.655 / 0.276 / 0.069."""
        speciality = merged.get("garden").evidence("speciality")
        assert format_mass_value(speciality.mass({"si"}), "decimal", 3) == "0.655"
        assert format_mass_value(speciality.mass({"hu"}), "decimal", 3) == "0.276"
        assert format_mass_value(speciality.ignorance(), "decimal", 3) == "0.069"

    def test_paper_printed_digits_garden_rating(self, merged):
        """1/7 and 6/7 print as the paper's 0.143 / 0.857."""
        rating = merged.get("garden").evidence("rating")
        assert rating.mass({"ex"}) == Fraction(1, 7)
        assert rating.mass({"gd"}) == Fraction(6, 7)
        assert format_mass_value(rating.mass({"ex"}), "decimal", 3) == "0.143"
        assert format_mass_value(rating.mass({"gd"}), "decimal", 3) == "0.857"

    def test_garden_best_dish(self, merged):
        """{d35,d36} meets {d35} -> d35 with mass 0.3; d31 keeps 0.7."""
        best = merged.get("garden").evidence("best_dish")
        assert best.mass({"d31"}) == Fraction(7, 10)
        assert best.mass({"d35"}) == Fraction(3, 10)
        assert best.mass({"d35", "d36"}) == 0

    def test_wok_becomes_pure_sichuan(self, merged):
        assert merged.get("wok").evidence("speciality").definite_value() == "si"

    def test_wok_best_dish_sharpens(self, merged):
        best = merged.get("wok").evidence("best_dish")
        assert best.mass({"d6"}) == Fraction(1, 2)
        assert best.mass({"d7"}) == Fraction(1, 4)
        assert best.mass({"d25"}) == Fraction(1, 4)

    def test_country_best_dish(self, merged):
        best = merged.get("country").evidence("best_dish")
        assert best.mass({"d1"}) == Fraction(1, 4)
        assert best.mass({"d2"}) == Fraction(3, 4)

    def test_olive_rating(self, merged):
        rating = merged.get("olive").evidence("rating")
        assert rating.mass({"gd"}) == Fraction(4, 5)
        assert rating.mass({"avg"}) == Fraction(1, 5)

    def test_mehl_membership_and_dishes(self, merged):
        mehl = merged.get("mehl")
        # (0.5,0.5) (+) (0.8,1) = (5/6, 5/6), printed (0.83, 0.83).
        assert mehl.membership.as_tuple() == (Fraction(5, 6), Fraction(5, 6))
        assert mehl.membership.format(style="decimal") == "(0.83,0.83)"
        best = mehl.evidence("best_dish")
        assert best.mass({"d24"}) == Fraction(2, 29)
        assert best.mass({"d31"}) == Fraction(27, 29)

    def test_ashiana_passes_through_unchanged(self, merged, ra):
        """Only R_A knows ashiana; the union must retain it verbatim."""
        assert merged.get("ashiana") is not None
        original = ra.get("ashiana")
        copied = merged.get("ashiana")
        assert copied.membership == original.membership
        for name in ("speciality", "best_dish", "rating"):
            assert copied.evidence(name) == original.evidence(name)

    def test_report_counts(self, ra, rb):
        _, report = union_with_report(ra, rb)
        assert len(report.matched) == 5
        assert report.left_only == [("ashiana",)]
        assert report.right_only == []
        assert report.total_conflicts == []


class TestTable5:
    """project[rname, phone, speciality, rating, (sn,sp)](R_A)."""

    def test_exact_reproduction(self, ra):
        result = project(ra, ["rname", "phone", "speciality", "rating"])
        assert result.same_tuples(expected_table5())

    def test_all_six_tuples_survive(self, ra):
        result = project(ra, ["rname", "phone", "speciality", "rating"])
        assert len(result) == 6

    def test_membership_carried(self, ra):
        result = project(ra, ["rname", "phone", "speciality", "rating"])
        assert result.get("mehl").membership.as_tuple() == (
            Fraction(1, 2),
            Fraction(1, 2),
        )


class TestUnionAlgebraicProperties:
    def test_union_commutative_on_paper_data(self, ra, rb):
        left = union(ra, rb, name="U")
        right = union(rb, ra, name="U")
        assert left.same_tuples(right)

    def test_union_query_order_independent(self, ra, rb):
        """Combining evidence is associative/commutative, so the order of
        integrating databases does not matter (Section 2.2)."""
        third = table_ra("RC")  # a third source identical to R_A
        a = union(union(ra, rb), third)
        b = union(ra, union(rb, third))
        assert a.same_tuples(b)
