"""Tests for the extended union beyond the Table 4 case."""

from fractions import Fraction

import pytest

from repro.errors import OperationError, SchemaError, TotalConflictError
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.algebra import union, union_with_report
from repro.datasets.restaurants import table_ra, table_rb


@pytest.fixture
def schema():
    return RelationSchema(
        "S",
        [
            Attribute("k", TextDomain("k"), key=True),
            Attribute(
                "colour",
                EnumeratedDomain("colour", ["r", "g", "b"]),
                uncertain=True,
            ),
        ],
    )


def _rel(schema, name, rows):
    tuples = [
        ExtendedTuple(schema.with_name(name), values, membership)
        for values, membership in rows
    ]
    return ExtendedRelation(schema.with_name(name), tuples)


class TestStructure:
    def test_unmatched_tuples_pass_through(self, schema):
        left = _rel(schema, "L", [({"k": "a", "colour": "r"}, (1, 1))])
        right = _rel(schema, "R", [({"k": "b", "colour": "g"}, (1, 1))])
        merged = union(left, right)
        assert sorted(t.key()[0] for t in merged) == ["a", "b"]

    def test_union_incompatible_schemas_rejected(self, schema):
        other = RelationSchema(
            "T",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute(
                    "shade",
                    EnumeratedDomain("shade", ["r", "g", "b"]),
                    uncertain=True,
                ),
            ],
        )
        left = _rel(schema, "L", [({"k": "a", "colour": "r"}, (1, 1))])
        right = ExtendedRelation(
            other, [ExtendedTuple(other, {"k": "a", "shade": "r"}, (1, 1))]
        )
        with pytest.raises(SchemaError):
            union(left, right)

    def test_result_name(self, schema):
        left = _rel(schema, "L", [({"k": "a", "colour": "r"}, (1, 1))])
        right = _rel(schema, "R", [({"k": "a", "colour": "r"}, (1, 1))])
        assert union(left, right).name == "L_union_R"
        assert union(left, right, name="M").name == "M"

    def test_bad_conflict_policy_rejected(self, schema):
        left = _rel(schema, "L", [({"k": "a", "colour": "r"}, (1, 1))])
        with pytest.raises(OperationError):
            union(left, left.with_name("R"), on_conflict="panic")


class TestConflictPolicies:
    @pytest.fixture
    def conflicting(self, schema):
        left = _rel(schema, "L", [({"k": "a", "colour": "r"}, (1, 1))])
        right = _rel(schema, "R", [({"k": "a", "colour": "g"}, (1, 1))])
        return left, right

    def test_raise_policy(self, conflicting):
        left, right = conflicting
        with pytest.raises(TotalConflictError, match="colour"):
            union(left, right)

    def test_vacuous_policy_records_and_continues(self, conflicting):
        left, right = conflicting
        merged, report = union_with_report(left, right, on_conflict="vacuous")
        assert merged.get("a").evidence("colour").is_vacuous()
        assert len(report.total_conflicts) == 1
        assert report.total_conflicts[0].attribute == "colour"

    def test_drop_policy_removes_tuple(self, conflicting):
        left, right = conflicting
        merged, report = union_with_report(left, right, on_conflict="drop")
        assert len(merged) == 0
        assert report.dropped == [("a",)]

    def test_certain_attribute_conflict_drops_under_vacuous(self, schema):
        """A certain attribute cannot hold ignorance; the tuple goes."""
        certain_schema = RelationSchema(
            "S",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute("street", TextDomain("street")),
            ],
        )
        left = ExtendedRelation(
            certain_schema.with_name("L"),
            [
                ExtendedTuple(
                    certain_schema.with_name("L"),
                    {"k": "a", "street": "univ.ave."},
                    (1, 1),
                )
            ],
        )
        right = ExtendedRelation(
            certain_schema.with_name("R"),
            [
                ExtendedTuple(
                    certain_schema.with_name("R"),
                    {"k": "a", "street": "wash.ave."},
                    (1, 1),
                )
            ],
        )
        merged, report = union_with_report(left, right, on_conflict="vacuous")
        assert len(merged) == 0
        assert report.dropped == [("a",)]

    def test_membership_total_conflict(self, schema):
        left = _rel(schema, "L", [({"k": "a", "colour": "r"}, (1, 1))])
        right = ExtendedRelation(
            schema.with_name("R"),
            [
                ExtendedTuple(
                    schema.with_name("R"), {"k": "a", "colour": "r"}, (0, 0)
                )
            ],
            on_unsupported="allow",
        )
        with pytest.raises(TotalConflictError, match="membership"):
            union(left, right)
        merged, report = union_with_report(left, right, on_conflict="drop")
        assert len(merged) == 0
        assert any(c.attribute == "(sn,sp)" for c in report.total_conflicts)


class TestReport:
    def test_kappa_recorded_per_attribute(self):
        merged, report = union_with_report(table_ra(), table_rb())
        garden_spec = [
            c
            for c in report.conflicts
            if c.key == ("garden",) and c.attribute == "speciality"
        ]
        assert len(garden_spec) == 1
        assert garden_spec[0].kappa == Fraction(11, 40)
        assert not garden_spec[0].total

    def test_membership_conflict_recorded(self):
        _, report = union_with_report(table_ra(), table_rb())
        mehl_membership = [
            c
            for c in report.conflicts
            if c.key == ("mehl",) and c.attribute == "(sn,sp)"
        ]
        assert len(mehl_membership) == 1
        assert mehl_membership[0].kappa == Fraction(2, 5)

    def test_max_kappa(self):
        _, report = union_with_report(table_ra(), table_rb())
        assert report.max_kappa() == max(c.kappa for c in report.conflicts)

    def test_summary_mentions_counts(self):
        _, report = union_with_report(table_ra(), table_rb())
        assert "5 matched" in report.summary()
        assert "1 left-only" in report.summary()


class TestEvidencePooling:
    def test_certainty_shrinks_ignorance(self, schema):
        left = _rel(
            schema, "L", [({"k": "a", "colour": {"r": "1/2", ("r", "g"): "1/2"}}, (1, 1))]
        )
        right = _rel(
            schema, "R", [({"k": "a", "colour": {"r": "1/2", ("r", "g"): "1/2"}}, (1, 1))]
        )
        merged = union(left, right)
        colour = merged.get("a").evidence("colour")
        # Agreement concentrates mass on {r}.
        assert colour.mass({"r"}) > Fraction(1, 2)
        assert colour.mass({"r", "g"}) < Fraction(1, 2)

    def test_vacuous_right_is_identity(self, schema):
        from repro.model.evidence import EvidenceSet

        left = _rel(schema, "L", [({"k": "a", "colour": "r"}, ("1/2", 1))])
        # right membership (0,1) is not storable under CWA_ER; use allow.
        right = ExtendedRelation(
            schema.with_name("R"),
            [
                ExtendedTuple(
                    schema.with_name("R"),
                    {"k": "a", "colour": EvidenceSet.vacuous(schema.attribute("colour").domain)},
                    (0, 1),
                )
            ],
            on_unsupported="allow",
        )
        merged = union(left, right)
        assert merged.get("a").evidence("colour").definite_value() == "r"
        assert merged.get("a").membership.as_tuple() == (Fraction(1, 2), 1)
