"""Mechanical verification of Theorem 1: closure and boundedness.

The paper's proof lives in an unavailable technical report; these tests
verify the properties on the paper's data, on synthetic relations, and
property-based over generated workloads.  A negative test documents why
complements must carry sp = 1 (complete ignorance).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OperationError
from repro.algebra import (
    IsPredicate,
    ThetaPredicate,
    equijoin,
    lit,
    product,
    project,
    select,
    union,
)
from repro.algebra.properties import (
    augment_with_complement,
    complement_relation,
    verify_boundedness,
    verify_closure,
)
from repro.datasets.generators import SyntheticConfig, synthetic_pair
from repro.datasets.restaurants import table_ra, table_rb


@pytest.fixture
def ra():
    return table_ra()


@pytest.fixture
def rb():
    return table_rb()


PHANTOMS_L = [("phantom-a",), ("phantom-b",)]
PHANTOMS_R = [("phantom-c",)]


class TestClosure:
    def test_select_closure(self, ra):
        result = select(ra, IsPredicate("speciality", {"si"}))
        assert verify_closure(result)

    def test_union_closure(self, ra, rb):
        assert verify_closure(union(ra, rb))

    def test_project_closure(self, ra):
        assert verify_closure(project(ra, ["rname", "rating"]))

    def test_product_closure(self, ra, rb):
        assert verify_closure(product(ra, rb.with_name("RB2")))

    def test_join_closure(self, ra, rb):
        assert verify_closure(
            equijoin(ra, rb.with_name("RB2"), [("rname", "rname")])
        )


class TestComplementConstruction:
    def test_complement_tuples_have_zero_support(self, ra):
        complement = complement_relation(ra, PHANTOMS_L)
        for etuple in complement:
            assert etuple.membership.as_tuple() == (0, 1)

    def test_complement_attributes_vacuous(self, ra):
        complement = complement_relation(ra, PHANTOMS_L)
        for etuple in complement:
            for name in ("speciality", "best_dish", "rating"):
                assert etuple.evidence(name).is_vacuous()

    def test_existing_key_rejected(self, ra):
        with pytest.raises(OperationError, match="already present"):
            complement_relation(ra, [("wok",)])

    def test_wrong_key_arity_rejected(self, ra):
        with pytest.raises(OperationError, match="does not match"):
            complement_relation(ra, [("a", "b")])

    def test_augmentation_concatenates(self, ra):
        augmented = augment_with_complement(ra, PHANTOMS_L)
        assert len(augmented) == len(ra) + len(PHANTOMS_L)


class TestBoundednessOnPaperData:
    def test_union(self, ra, rb):
        assert verify_boundedness(union, [ra, rb], [PHANTOMS_L, PHANTOMS_R])

    def test_select(self, ra):
        operation = lambda r: select(r, IsPredicate("speciality", {"si"}))
        assert verify_boundedness(operation, [ra], [PHANTOMS_L])

    def test_project(self, ra):
        operation = lambda r: project(r, ["rname", "speciality"])
        assert verify_boundedness(operation, [ra], [PHANTOMS_L])

    def test_product(self, ra, rb):
        operation = lambda a, b: product(a, b.with_name("RB2"))
        assert verify_boundedness(operation, [ra, rb], [PHANTOMS_L, PHANTOMS_R])

    def test_join(self, ra, rb):
        operation = lambda a, b: equijoin(
            a, b.with_name("RB2"), [("rname", "rname")]
        )
        assert verify_boundedness(operation, [ra, rb], [PHANTOMS_L, PHANTOMS_R])

    def test_theta_select(self, ra):
        operation = lambda r: select(r, ThetaPredicate("bldg_no", ">=", lit(500)))
        assert verify_boundedness(operation, [ra], [PHANTOMS_L])

    def test_input_arity_validated(self, ra):
        with pytest.raises(OperationError):
            verify_boundedness(union, [ra], [PHANTOMS_L, PHANTOMS_R])


class TestBoundednessNegative:
    def test_sp_below_one_breaks_union_boundedness(self, ra, rb):
        """A complement with sp < 1 carries *evidence of non-membership*;
        Dempster-combining it with a matched real tuple changes that
        tuple's membership, so boundedness fails.  This is exactly why
        CWA_ER complements read as (0, 1)."""
        # Overlap the complement with the *other* relation's keys so the
        # union actually matches a complement tuple against real data.
        augmented_left = augment_with_complement(ra, [("extra",)], sp="1/2")
        extra_schema = rb.schema
        from repro.model.etuple import ExtendedTuple
        from repro.model.evidence import EvidenceSet
        from repro.model.relation import ExtendedRelation

        # Certain attributes must agree with the synthesized complement
        # values (a certain attribute cannot express ignorance, so the
        # complement carries the domain's arbitrary sample: "" / low).
        extra_tuple = ExtendedTuple(
            extra_schema,
            {
                "rname": "extra",
                "street": "",
                "bldg_no": 1,
                "phone": "",
                "speciality": EvidenceSet.vacuous(
                    extra_schema.attribute("speciality").domain
                ),
                "best_dish": EvidenceSet.vacuous(
                    extra_schema.attribute("best_dish").domain
                ),
                "rating": {"gd": "1/2", "ex": "1/2"},
            },
            ("1/2", 1),
        )
        grown_rb = rb.add(extra_tuple)
        plain = union(ra, grown_rb)
        augmented = union(augmented_left, grown_rb)
        # sn changes for the matched key -> boundedness equality broken.
        assert plain.get("extra").membership != augmented.get("extra").membership

    def test_sp_one_preserves_union_boundedness(self, ra, rb):
        """Same setup with sp = 1 complements: identical results."""
        augmented_left = augment_with_complement(ra, [("phantom-x",)], sp=1)
        plain = union(ra, rb)
        augmented = union(augmented_left, rb)
        plain_supported = {
            t.key(): (tuple(t.items()), t.membership)
            for t in plain
            if t.membership.is_supported
        }
        augmented_supported = {
            t.key(): (tuple(t.items()), t.membership)
            for t in augmented
            if t.membership.is_supported
        }
        assert plain_supported == augmented_supported


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_boundedness_property_on_synthetic_workloads(seed):
    """Theorem 1's boundedness on randomized relations, all operations."""
    config = SyntheticConfig(n_tuples=12, seed=seed, conflict=0.4)
    left, right = synthetic_pair(config)
    phantom_l = [(90_000 + seed,)]
    phantom_r = [(90_001 + seed,)]

    safe_union = lambda a, b: union(a, b, on_conflict="vacuous")
    assert verify_boundedness(safe_union, [left, right], [phantom_l, phantom_r])

    selector = lambda r: select(r, IsPredicate("category", {"c0", "c1"}))
    assert verify_boundedness(selector, [left], [phantom_l])

    projector = lambda r: project(r, ["id", "category"])
    assert verify_boundedness(projector, [left], [phantom_l])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_closure_property_on_synthetic_workloads(seed):
    config = SyntheticConfig(n_tuples=10, seed=seed)
    left, right = synthetic_pair(config)
    assert verify_closure(union(left, right, on_conflict="vacuous"))
    assert verify_closure(select(left, IsPredicate("category", {"c0"})))
    assert verify_closure(product(left, right))
