"""Tests for projection, cartesian product, join and rename."""

from fractions import Fraction

import pytest

from repro.errors import OperationError, SchemaError
from repro.algebra import (
    ThetaPredicate,
    attr,
    equijoin,
    join,
    product,
    project,
    rename,
)
from repro.datasets.restaurants import table_m_a, table_ra, table_rm_a


@pytest.fixture
def ra():
    return table_ra()


@pytest.fixture
def rm(
):
    return table_rm_a()


class TestProject:
    def test_drops_unlisted_attributes(self, ra):
        result = project(ra, ["rname", "rating"])
        assert result.schema.names == ("rname", "rating")
        assert result.get("wok").evidence("rating").mass({"avg"}) == Fraction(3, 4)

    def test_key_required(self, ra):
        with pytest.raises(SchemaError, match="retain key"):
            project(ra, ["rating"])

    def test_membership_carried(self, ra):
        result = project(ra, ["rname"])
        assert result.get("mehl").membership.as_tuple() == (
            Fraction(1, 2),
            Fraction(1, 2),
        )

    def test_rename_result(self, ra):
        assert project(ra, ["rname"], name="names").name == "names"


class TestProduct:
    def test_cardinality(self, ra, rm):
        assert len(product(ra, rm)) == len(ra) * len(rm)

    def test_clashing_names_prefixed(self, ra, rm):
        paired = product(ra, rm)
        assert "RA_rname" in paired.schema
        assert "RM_A_rname" in paired.schema
        assert "mname" in paired.schema  # unique, not prefixed

    def test_memberships_multiply(self, ra, rm):
        paired = product(ra, rm)
        # mehl (1/2,1/2) x (garden,chen) (4/5,1) -> (2/5,1/2)
        row = paired.get(("mehl", "garden", "chen"))
        assert row.membership.as_tuple() == (Fraction(2, 5), Fraction(1, 2))

    def test_product_key_is_union(self, ra, rm):
        paired = product(ra, rm)
        assert set(paired.schema.key_names) == {"RA_rname", "RM_A_rname", "mname"}

    def test_values_preserved_on_both_sides(self, ra, rm):
        paired = product(ra, rm)
        row = paired.get(("wok", "wok", "chen"))
        assert row.evidence("speciality").definite_value() == "si"


class TestJoin:
    def test_equijoin_restaurant_to_relationship(self, ra, rm):
        linked = equijoin(ra, rm, [("rname", "rname")])
        # Every RM_A tuple references an existing restaurant.
        assert len(linked) == len(rm)
        for row in linked:
            assert row.value("RA_rname") == row.value("RM_A_rname")

    def test_join_memberships_combine(self, ra, rm):
        linked = equijoin(ra, rm, [("rname", "rname")])
        # garden (1,1) x rm(garden,chen) (4/5,1) -> (4/5,1); the join
        # predicate on definite keys contributes (1,1).
        row = linked.get(("garden", "garden", "chen"))
        assert row.membership.as_tuple() == (Fraction(4, 5), Fraction(1))

    def test_three_way_relationship_traversal(self, ra, rm):
        """R -> RM -> M: Figure 2's full relationship path."""
        managers = table_m_a()
        first = equijoin(ra, rm, [("rname", "rname")])
        second = equijoin(first, managers, [("mname", "mname")])
        chen_links = [
            t for t in second if t.value("M_A_mname") == "chen"
        ]
        assert sorted(t.value("RA_rname") for t in chen_links) == ["garden", "wok"]

    def test_custom_theta_join(self, ra):
        other = rename(
            table_ra("RA2"),
            {name: name for name in []},
        )
        linked = join(
            ra,
            table_ra("RA2"),
            ThetaPredicate("RA_bldg_no", "<", attr("RA2_bldg_no")),
        )
        for row in linked:
            left = row.value("RA_bldg_no").definite_value()
            right = row.value("RA2_bldg_no").definite_value()
            assert left < right

    def test_equijoin_requires_pairs(self, ra, rm):
        with pytest.raises(OperationError):
            equijoin(ra, rm, [])

    def test_equijoin_bare_names(self, ra):
        linked = equijoin(ra, table_ra("RA2"), ["rname"])
        assert len(linked) == len(ra)


class TestRename:
    def test_rename_attribute(self, ra):
        renamed = rename(ra, {"rname": "restaurant"})
        assert "restaurant" in renamed.schema
        assert "rname" not in renamed.schema
        assert renamed.get("wok").key() == ("wok",)

    def test_rename_preserves_values(self, ra):
        renamed = rename(ra, {"rating": "stars"})
        assert renamed.get("wok").evidence("stars").mass({"avg"}) == Fraction(3, 4)

    def test_rename_unknown_rejected(self, ra):
        with pytest.raises(SchemaError):
            rename(ra, {"ghost": "x"})
