"""Tests for membership threshold conditions Q."""

import pytest

from repro.errors import OperationError
from repro.model.membership import TupleMembership
from repro.algebra.thresholds import (
    ALWAYS,
    SN_CERTAIN,
    SN_POSITIVE,
    MembershipThreshold,
    sn_at_least,
    sn_equals,
    sn_greater,
    sp_at_least,
    sp_equals,
    sp_greater,
)


class TestFactories:
    def test_sn_greater(self):
        q = sn_greater("1/2")
        assert q(TupleMembership("3/4", 1))
        assert not q(TupleMembership("1/2", 1))

    def test_sn_at_least(self):
        q = sn_at_least("1/2")
        assert q(TupleMembership("1/2", 1))
        assert not q(TupleMembership("1/4", 1))

    def test_sn_equals(self):
        q = sn_equals(1)
        assert q(TupleMembership(1, 1))
        assert not q(TupleMembership("9/10", 1))

    def test_sp_variants(self):
        assert sp_greater("1/2")(TupleMembership(0, "3/4"))
        assert sp_at_least("3/4")(TupleMembership(0, "3/4"))
        assert sp_equals(1)(TupleMembership(0, 1))
        assert not sp_greater(1)(TupleMembership(0, 1))

    def test_constants(self):
        assert SN_POSITIVE(TupleMembership("1/100", 1))
        assert not SN_POSITIVE(TupleMembership(0, 1))
        assert SN_CERTAIN(TupleMembership(1, 1))
        assert not SN_CERTAIN(TupleMembership("1/2", 1))
        assert ALWAYS(TupleMembership(0, 0))


class TestCombination:
    def test_conjunction(self):
        q = sn_greater(0) & sp_at_least("3/4")
        assert q(TupleMembership("1/2", "3/4"))
        assert not q(TupleMembership("1/2", "1/2"))

    def test_description_composes(self):
        q = sn_greater(0) & sp_at_least("1/2")
        assert "sn > 0" in q.description
        assert "sp >= 1/2" in q.description

    def test_bad_conjunction_operand(self):
        with pytest.raises(OperationError):
            sn_greater(0) & "not a threshold"

    def test_custom_threshold(self):
        gap = MembershipThreshold(lambda tm: tm.sp - tm.sn <= 0, "no ignorance")
        assert gap(TupleMembership("1/2", "1/2"))
        assert not gap(TupleMembership("1/4", "1/2"))

    def test_repr_shows_description(self):
        assert "sn > 0" in repr(SN_POSITIVE)
