"""Tests for the extended selection beyond the paper-table cases."""

from fractions import Fraction

import pytest

from repro.errors import PredicateError
from repro.algebra import (
    IsPredicate,
    SN_CERTAIN,
    ThetaPredicate,
    attr,
    lit,
    select,
)
from repro.algebra.thresholds import sn_at_least, sp_at_least
from repro.datasets.restaurants import table_ra


@pytest.fixture
def ra():
    return table_ra()


class TestThresholds:
    def test_sn_certain_keeps_only_definite_answers(self, ra):
        result = select(ra, IsPredicate("rating", {"ex"}), SN_CERTAIN)
        # Only country and ashiana have rating [ex^1] with certain
        # membership; mehl has [ex^0.8] and membership (0.5,0.5).
        assert sorted(t.key()[0] for t in result) == ["ashiana", "country"]

    def test_sn_at_least_half(self, ra):
        result = select(ra, IsPredicate("rating", {"ex"}), sn_at_least("1/2"))
        assert sorted(t.key()[0] for t in result) == ["ashiana", "country"]

    def test_sp_threshold(self, ra):
        result = select(ra, IsPredicate("speciality", {"hu"}), sp_at_least("1/2"))
        # garden: Pls({hu}) = 1/4 + 1/4 = 1/2 -> sp = 1/2 passes;
        # sn = Bel = 1/4 > 0.
        assert [t.key()[0] for t in result] == ["garden"]

    def test_sn_zero_tuples_always_excluded(self, ra):
        """Even a permissive threshold cannot admit sn = 0 tuples."""
        from repro.algebra.thresholds import ALWAYS

        result = select(ra, IsPredicate("speciality", {"si"}), ALWAYS)
        assert sorted(t.key()[0] for t in result) == ["garden", "wok"]


class TestThetaSelection:
    def test_numeric_comparison_on_certain_attribute(self, ra):
        result = select(ra, ThetaPredicate("bldg_no", ">=", lit(600)))
        assert sorted(t.key()[0] for t in result) == ["garden", "mehl", "wok"]

    def test_comparison_is_crisp_for_definite_values(self, ra):
        result = select(ra, ThetaPredicate("bldg_no", "<", lit(600)))
        for t in result:
            assert t.membership == table_ra().get(t.key()).membership

    def test_attribute_to_attribute(self, ra):
        result = select(ra, ThetaPredicate("bldg_no", "=", attr("bldg_no")))
        assert len(result) == len(ra)


class TestResultShape:
    def test_original_relation_untouched(self, ra):
        select(ra, IsPredicate("speciality", {"si"}))
        assert len(ra) == 6
        assert ra.get("garden").membership.is_certain

    def test_result_name_defaults_to_input(self, ra):
        assert select(ra, IsPredicate("speciality", {"si"})).name == "RA"

    def test_result_name_override(self, ra):
        result = select(ra, IsPredicate("speciality", {"si"}), name="sichuan")
        assert result.name == "sichuan"
        assert len(result) == 2

    def test_unknown_attribute_rejected(self, ra):
        with pytest.raises(PredicateError, match="unknown attribute"):
            select(ra, IsPredicate("cuisine", {"si"}))

    def test_empty_result_is_valid_relation(self, ra):
        result = select(ra, IsPredicate("speciality", {"ta"}), SN_CERTAIN)
        assert len(result) == 0
        assert result.schema.names == ra.schema.names

    def test_selection_composes(self, ra):
        """Cascaded selections multiply supports."""
        first = select(ra, IsPredicate("speciality", {"mu"}))
        second = select(first, IsPredicate("rating", {"ex"}))
        mehl = second.get("mehl")
        assert mehl.membership.as_tuple() == (Fraction(8, 25), Fraction(8, 25))

    def test_selection_on_key_attribute(self, ra):
        result = select(ra, ThetaPredicate("rname", "=", lit("wok")))
        assert [t.key()[0] for t in result] == ["wok"]
