"""Tests for the extended intersection (consensus extension)."""

from fractions import Fraction

import pytest

from repro.errors import OperationError, TotalConflictError
from repro.algebra import intersection, intersection_with_report, union
from repro.algebra.properties import verify_boundedness, verify_closure
from repro.datasets.restaurants import expected_table4, table_ra, table_rb


class TestIntersection:
    def test_keeps_only_matched_keys(self):
        consensus = intersection(table_ra(), table_rb())
        assert sorted(t.key()[0] for t in consensus) == [
            "country",
            "garden",
            "mehl",
            "olive",
            "wok",
        ]
        assert consensus.get("ashiana") is None

    def test_matched_tuples_equal_union_result(self):
        """On matched keys, intersection and union agree exactly."""
        consensus = intersection(table_ra(), table_rb())
        integrated = expected_table4()
        for t in consensus:
            merged = integrated.get(t.key())
            assert t.membership == merged.membership
            for name in ("speciality", "best_dish", "rating"):
                assert t.evidence(name) == merged.evidence(name)

    def test_report(self):
        _, report = intersection_with_report(table_ra(), table_rb())
        assert len(report.matched) == 5
        assert report.left_only == [("ashiana",)]
        assert report.right_only == []

    def test_result_name(self):
        assert intersection(table_ra(), table_rb()).name == "RA_intersect_RB"
        assert intersection(table_ra(), table_rb(), name="C").name == "C"

    def test_commutative(self):
        left = intersection(table_ra(), table_rb(), name="C")
        right = intersection(table_rb(), table_ra(), name="C")
        assert left.same_tuples(right)

    def test_conflict_policies(self):
        with pytest.raises(OperationError):
            intersection(table_ra(), table_rb(), on_conflict="panic")

    def test_theorem1_properties(self):
        assert verify_closure(intersection(table_ra(), table_rb()))
        assert verify_boundedness(
            intersection,
            [table_ra(), table_rb()],
            [[("phantom-a",)], [("phantom-b",)]],
        )

    def test_intersection_subset_of_union(self):
        consensus = intersection(table_ra(), table_rb(), name="X")
        integrated = union(table_ra(), table_rb(), name="X")
        assert set(consensus.keys()) <= set(integrated.keys())


class TestIntersectionViaSql:
    def test_intersect_statement(self):
        from repro.storage import Database

        db = Database()
        db.add(table_ra())
        db.add(table_rb())
        result = db.query("RA INTERSECT RB BY (rname)")
        assert len(result) == 5
        direct = intersection(table_ra(), table_rb())
        assert result.same_tuples(direct.with_name(result.name))

    def test_no_pushdown_through_intersect(self):
        from repro.storage import Database
        from repro.query.parser import parse
        from repro.query.planner import build_plan, optimize
        from repro.query.plans import IntersectPlan, SelectPlan

        db = Database()
        db.add(table_ra())
        db.add(table_rb())
        plan = optimize(
            build_plan(
                parse("SELECT * FROM (RA INTERSECT RB) WHERE rating IS {ex}"),
                db,
            )
        )
        assert isinstance(plan, SelectPlan)
        assert isinstance(plan.child, IntersectPlan)

    def test_explain_shows_intersect(self):
        from repro.storage import Database

        db = Database()
        db.add(table_ra())
        db.add(table_rb())
        assert "Intersect" in db.explain("RA INTERSECT RB")
