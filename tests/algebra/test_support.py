"""Tests for the selection support function F_SS."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.errors import PredicateError
from repro.ds.frame import OMEGA
from repro.model.domain import EnumeratedDomain
from repro.model.evidence import EvidenceSet
from repro.algebra.support import (
    is_support,
    normalize_theta,
    theta_support,
)
from tests.conftest import mass_functions


class TestIsSupport:
    def test_bel_pls_pair(self):
        es = EvidenceSet("[si^0.5, hu^0.25, Ω^0.25]")
        support = is_support(es, {"si"})
        assert support.as_tuple() == (Fraction(1, 2), Fraction(3, 4))

    def test_definite_hit(self):
        es = EvidenceSet.definite("si")
        assert is_support(es, {"si"}).as_tuple() == (1, 1)

    def test_definite_miss(self):
        es = EvidenceSet.definite("am")
        assert is_support(es, {"si"}).as_tuple() == (0, 0)

    def test_set_focal_element_partially_supports(self):
        es = EvidenceSet("[{d35,d36}^1]")
        # Bel({d35}) = 0 (mass is on the pair), Pls({d35}) = 1.
        assert is_support(es, {"d35"}).as_tuple() == (0, 1)
        # Querying the whole pair captures the mass.
        assert is_support(es, {"d35", "d36"}).as_tuple() == (1, 1)

    def test_empty_value_set_rejected(self):
        with pytest.raises(PredicateError):
            is_support(EvidenceSet.definite("x"), set())


class TestNormalizeTheta:
    def test_aliases(self):
        assert normalize_theta("==") == "="
        assert normalize_theta("≥") == ">="
        assert normalize_theta("≤") == "<="

    def test_canonical_passthrough(self):
        for op in ("=", "<", ">", "<=", ">="):
            assert normalize_theta(op) == op

    def test_unknown_rejected(self):
        with pytest.raises(PredicateError):
            normalize_theta("!=")


class TestThetaSupport:
    """The Section 3.1.1 definition: sn sums pairs where theta holds
    for every member pair, sp sums pairs where it holds for some."""

    @pytest.fixture
    def a(self):
        # The paper's example operand A = [{1,4}^0.6, {2,6}^0.4].
        return EvidenceSet({frozenset({1, 4}): "3/5", frozenset({2, 6}): "2/5"})

    @pytest.fixture
    def b(self):
        # The paper's example operand B = [{2,4}^0.8, {5}^0.2].
        return EvidenceSet({frozenset({2, 4}): "4/5", frozenset({5}): "1/5"})

    def test_definitional_semantics_all_operators(self, a, b):
        """Exhaustive check of the definition for each theta.

        (The paper's inline example prints (0.6, 1); its comparison glyph
        is lost to OCR, and no theta in {=,<,>,<=,>=} yields that pair
        under the printed definition -- see EXPERIMENTS.md.  What we pin
        down here is the *definition* itself, hand-evaluated.)
        """
        # pairs and weights: ({1,4},{2,4}):12/25, ({1,4},{5}):3/25,
        #                    ({2,6},{2,4}):8/25,  ({2,6},{5}):2/25
        expectations = {
            "=": (0, Fraction(12 + 8, 25)),
            "<": (Fraction(3, 25), 1),
            "<=": (Fraction(3, 25), 1),
            ">": (0, Fraction(12 + 8 + 2, 25)),
            ">=": (0, Fraction(12 + 8 + 2, 25)),
        }
        for op, (sn, sp) in expectations.items():
            support = theta_support(a, b, op)
            assert support.as_tuple() == (sn, sp), op

    def test_definite_comparison(self):
        five = EvidenceSet.definite(5)
        three = EvidenceSet.definite(3)
        assert theta_support(five, three, ">").as_tuple() == (1, 1)
        assert theta_support(five, three, "<").as_tuple() == (0, 0)
        assert theta_support(five, five, "=").as_tuple() == (1, 1)

    def test_equality_of_sets_never_definitely_true(self):
        pair = EvidenceSet({frozenset({1, 2}): 1})
        assert theta_support(pair, pair, "=").as_tuple() == (0, 1)

    def test_unframed_omega_contributes_possibility_only(self):
        a = EvidenceSet({OMEGA: "1/2", frozenset({5}): "1/2"})
        b = EvidenceSet.definite(5)
        support = theta_support(a, b, "=")
        assert support.as_tuple() == (Fraction(1, 2), 1)

    def test_framed_omega_resolves_exactly(self):
        domain = EnumeratedDomain("score", [5])
        a = EvidenceSet({OMEGA: 1}, domain)
        b = EvidenceSet.definite(5, domain)
        # OMEGA = {5} here, so equality is certain.
        assert theta_support(a, b, "=").as_tuple() == (1, 1)

    def test_incomparable_values_raise(self):
        a = EvidenceSet.definite("text")
        b = EvidenceSet.definite(5)
        with pytest.raises(PredicateError, match="cannot compare"):
            theta_support(a, b, "<")

    def test_support_is_valid_membership_pair(self, a, b):
        for op in ("=", "<", ">", "<=", ">="):
            support = theta_support(a, b, op)
            assert 0 <= support.sn <= support.sp <= 1


@given(m=mass_functions())
def test_is_support_always_valid_interval(m):
    es = EvidenceSet(m)
    support = is_support(es, {"a", "b"})
    assert 0 <= support.sn <= support.sp <= 1
