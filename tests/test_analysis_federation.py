"""Tests for the analysis layer (decisions, quality) and multi-source
federation."""

import itertools
from fractions import Fraction

import pytest

from repro.errors import IntegrationError, OperationError
from repro.algebra import union
from repro.analysis import decide, relation_quality, attribute_uncertainty
from repro.integration import Federation, TupleMerger
from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.datasets.restaurants import table_ra, table_rb


@pytest.fixture
def integrated():
    return union(table_ra(), table_rb(), name="R")


class TestDecisions:
    def test_max_belief_on_integrated_relation(self, integrated):
        rows = {r.key[0]: r for r in decide(integrated, "max_belief")}
        assert rows["garden"].values["speciality"] == "si"
        assert rows["garden"].confidence["speciality"] == Fraction(19, 29)
        assert rows["wok"].values["rating"] == "gd"
        assert rows["wok"].confidence["rating"] == 1

    def test_policies_can_disagree(self):
        """max_belief and max_plausibility pick different values when a
        set-focal element overlaps a weaker singleton."""
        from repro.model.attribute import Attribute
        from repro.model.domain import EnumeratedDomain, TextDomain
        from repro.model.etuple import ExtendedTuple
        from repro.model.relation import ExtendedRelation
        from repro.model.schema import RelationSchema

        schema = RelationSchema(
            "S",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute(
                    "v", EnumeratedDomain("v", ["a", "b", "c"]), uncertain=True
                ),
            ],
        )
        relation = ExtendedRelation(
            schema,
            [
                ExtendedTuple(
                    schema,
                    # Bel: a = 2/5 beats b = 1/5.
                    # Pls: b = 1/5 + 2/5 = 3/5 beats a = 2/5.
                    {"k": "t", "v": {"a": "2/5", ("b", "c"): "2/5", "b": "1/5"}},
                )
            ],
        )
        cautious = decide(relation, "max_belief")[0].values["v"]
        credulous = decide(relation, "max_plausibility")[0].values["v"]
        assert cautious == "a"
        assert credulous == "b"

    def test_membership_threshold_filters(self, integrated):
        all_rows = decide(integrated)
        confident = decide(integrated, "max_belief", min_membership_sn="9/10")
        assert len(confident) < len(all_rows)
        assert all(r.membership.sn >= Fraction(9, 10) for r in confident)

    def test_unknown_policy(self, integrated):
        with pytest.raises(OperationError):
            decide(integrated, "coin_flip")

    def test_keys_and_certain_attributes_pass_through(self, integrated):
        row = next(r for r in decide(integrated) if r.key == ("wok",))
        assert row.values["rname"] == "wok"
        assert row.values["street"] == "wash.ave."
        assert row.confidence["street"] == 1


OMEGA_KEY = __import__("repro.ds.frame", fromlist=["OMEGA"]).OMEGA


class TestQuality:
    def test_paper_relation_quality(self):
        report = relation_quality(table_ra())
        assert report.n_tuples == 6
        assert report.certain_tuples == 5
        assert 0 < report.mean_sn <= 1
        assert report.summary().startswith("RA: 6 tuples")

    def test_integration_improves_quality(self, integrated):
        """Pooling evidence lowers ignorance and nonspecificity."""
        before = relation_quality(table_rb())
        after = relation_quality(integrated)
        spec_before = before.attribute("speciality")
        spec_after = after.attribute("speciality")
        assert spec_after.mean_ignorance < spec_before.mean_ignorance
        assert spec_after.mean_nonspecificity < spec_before.mean_nonspecificity

    def test_attribute_uncertainty_unknown_attribute(self):
        with pytest.raises(OperationError):
            attribute_uncertainty(table_ra(), "ghost")

    def test_empty_relation(self):
        from repro.model.relation import ExtendedRelation

        empty = ExtendedRelation(table_ra().schema, [])
        report = relation_quality(empty)
        assert report.n_tuples == 0
        assert report.mean_sn == 0.0


class TestFederation:
    def test_two_source_federation_matches_union(self):
        federation = Federation()
        federation.add_source("daily", table_ra())
        federation.add_source("tribune", table_rb())
        integrated, report = federation.integrate(name="R")
        assert integrated.same_tuples(union(table_ra(), table_rb(), name="R"))
        assert len(report.steps) == 1
        assert report.total_conflicts == 0

    def test_three_sources_order_independent(self):
        """Dempster's rule is associative/commutative, so any source
        ordering yields the same federation.

        Full ignorance mass on every evidence set guarantees kappa < 1,
        so no total-conflict fallback fires -- the fallback (like any
        exception handling) is *not* associative, which is precisely why
        order independence only holds on the conflict-free path.
        """
        config = SyntheticConfig(
            n_tuples=12, conflict=0.0, ignorance=1.0, seed=5
        )
        sources = {
            "a": synthetic_relation(config, "A"),
            "b": synthetic_relation(config, "B"),
            "c": synthetic_relation(config, "C"),
        }
        results = []
        for ordering in itertools.permutations(sources):
            federation = Federation(TupleMerger(on_conflict="vacuous"))
            for name in ordering:
                federation.add_source(name, sources[name])
            integrated, _ = federation.integrate(name="F")
            results.append(integrated)
        first = results[0]
        for other in results[1:]:
            assert first.same_tuples(other)

    def test_reliability_discounting(self):
        trusted = Federation()
        trusted.add_source("a", table_ra())
        trusted.add_source("b", table_rb())
        hedged = Federation()
        hedged.add_source("a", table_ra())
        hedged.add_source("b", table_rb(), reliability="1/2")
        full, _ = trusted.integrate()
        weak, _ = hedged.integrate()
        garden_full = full.get("garden").evidence("speciality")
        garden_weak = weak.get("garden").evidence("speciality")
        assert garden_weak.ignorance() > garden_full.ignorance()

    def test_single_source(self):
        federation = Federation()
        federation.add_source("only", table_ra())
        integrated, report = federation.integrate(name="F")
        assert integrated.same_tuples(table_ra().with_name("F"))
        assert report.steps == []

    def test_empty_federation_rejected(self):
        with pytest.raises(IntegrationError):
            Federation().integrate()

    def test_duplicate_source_rejected(self):
        federation = Federation()
        federation.add_source("a", table_ra())
        with pytest.raises(IntegrationError, match="duplicate"):
            federation.add_source("a", table_rb())

    def test_bad_reliability_rejected(self):
        federation = Federation()
        with pytest.raises(IntegrationError):
            federation.add_source("a", table_ra(), reliability=2)

    def test_report_summary_lists_steps(self):
        federation = Federation()
        federation.add_source("a", table_ra())
        federation.add_source("b", table_rb())
        _, report = federation.integrate()
        assert "(+) b:" in report.summary()


class TestEntityLevelIntegration:
    """On-demand per-entity merging (federated point queries)."""

    @pytest.fixture
    def federation(self):
        federation = Federation()
        federation.add_source("daily", table_ra())
        federation.add_source("tribune", table_rb())
        return federation

    def test_matches_full_materialization(self, federation):
        integrated, _ = federation.integrate(name="R")
        for key in integrated.keys():
            on_demand = federation.integrate_entity(key, name="R")
            materialized = integrated.get(key)
            assert on_demand.membership == materialized.membership
            for attr_name in ("speciality", "best_dish", "rating"):
                assert on_demand.evidence(attr_name) == materialized.evidence(
                    attr_name
                )

    def test_scalar_key_convenience(self, federation):
        assert federation.integrate_entity("wok") is not None

    def test_unknown_entity(self, federation):
        assert federation.integrate_entity(("nowhere",)) is None

    def test_single_source_entity(self, federation):
        """ashiana exists only in R_A; the point merge returns it as-is."""
        on_demand = federation.integrate_entity(("ashiana",))
        original = table_ra().get("ashiana")
        assert on_demand.membership == original.membership

    def test_reliability_applies_per_entity(self):
        federation = Federation()
        federation.add_source("daily", table_ra())
        federation.add_source("tribune", table_rb(), reliability="1/2")
        hedged = federation.integrate_entity(("garden",))
        trusted_federation = Federation()
        trusted_federation.add_source("daily", table_ra())
        trusted_federation.add_source("tribune", table_rb())
        trusted = trusted_federation.integrate_entity(("garden",))
        assert (
            hedged.evidence("speciality").ignorance()
            > trusted.evidence("speciality").ignorance()
        )

    def test_empty_federation_rejected(self):
        with pytest.raises(IntegrationError):
            Federation().integrate_entity(("x",))


class TestFederationTreeFold:
    def _conflicting_sources(self):
        """Two relations with an irreconcilable attribute on key 't'."""
        from repro.model.attribute import Attribute
        from repro.model.domain import EnumeratedDomain, TextDomain
        from repro.model.etuple import ExtendedTuple
        from repro.model.relation import ExtendedRelation
        from repro.model.schema import RelationSchema

        schema = RelationSchema(
            "S",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute(
                    "v", EnumeratedDomain("v", ["a", "b", "c"]), uncertain=True
                ),
            ],
        )

        def one(name, focal):
            return ExtendedRelation(
                schema.with_name(name),
                [ExtendedTuple(schema, {"k": "t", "v": {focal: 1}})],
            )

        return one("left", "a"), one("right", "b"), one("bystander", "a")

    def test_total_conflict_error_names_the_source_pair(self):
        from repro.errors import TotalConflictError

        left, right, bystander = self._conflicting_sources()
        federation = Federation()
        federation.add_source("metro", left)
        federation.add_source("herald", right)
        with pytest.raises(TotalConflictError) as excinfo:
            federation.integrate()
        message = str(excinfo.value)
        assert "'metro'" in message and "'herald'" in message

    def test_conflict_labels_cover_merged_groups(self):
        """With four sources the second round merges groups; the error
        names the composite labels so the administrator can bisect."""
        from repro.errors import TotalConflictError

        left, right, bystander = self._conflicting_sources()
        federation = Federation()
        # Pairs (p, q) and (r, s) are internally consistent; the final
        # group-vs-group merge is the one that conflicts.
        federation.add_source("p", left)
        federation.add_source("q", bystander)
        federation.add_source("r", right)
        federation.add_source("s", right.with_name("right2"))
        with pytest.raises(TotalConflictError) as excinfo:
            federation.integrate()
        assert "'p+q'" in str(excinfo.value)
        assert "'r+s'" in str(excinfo.value)

    def test_five_source_tree_fold_equals_sequential_fold(self):
        """The balanced tree fold must reproduce the left-to-right fold
        exactly (associativity, exact arithmetic)."""
        config = SyntheticConfig(
            n_tuples=10, conflict=0.4, ignorance=1.0, seed=11
        )
        relations = {
            name: synthetic_relation(config, name) for name in "ABCDE"
        }
        federation = Federation(TupleMerger(on_conflict="vacuous"))
        for name, relation in relations.items():
            federation.add_source(name, relation)
        integrated, report = federation.integrate(name="F")
        assert len(report.steps) == len(relations) - 1

        merger = TupleMerger(on_conflict="vacuous")
        names = list(relations)
        accumulated = relations[names[0]]
        for name in names[1:]:
            accumulated, _ = merger.merge(accumulated, relations[name], name="F")
        assert integrated.same_tuples(accumulated)
