"""Durable streams: write-ahead logging, crash recovery, snapshots.

The contract under test: a :class:`StreamEngine` attached to a
:class:`LogBackend` can be killed at any point and
:meth:`LogBackend.recover_stream` rebuilds it *exactly* as of the last
flush -- the integrated relation, the per-source snapshots and
reliabilities, and the watermark.  Events accepted after the last flush
were never durable and must be absent.  Recovery must also agree with
``Federation.integrate`` over the recovered per-source snapshots (the
same oracle the live engine is property-tested against).

Snapshot backends (json/sqlite) get the weaker but still useful
guarantee: the integrated relation and the watermark survive.
"""

import random
import tempfile
from fractions import Fraction
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.datasets.restaurants import table_ra, table_rb
from repro.errors import SerializationError, TotalConflictError
from repro.integration import Federation, TupleMerger
from repro.model.evidence import EvidenceSet
from repro.storage import Database, open_backend
from repro.stream import StreamEngine

RELIABILITIES = (1, Fraction(1, 2), Fraction(3, 4), Fraction(9, 10))


def log_backend(tmp_path, name="wal.jsonl"):
    return open_backend(f"log:{tmp_path / name}")


def durable_engine(backend, schema, **kwargs):
    kwargs.setdefault("merger", TupleMerger(on_conflict="vacuous"))
    return StreamEngine(schema, name="R", backend=backend, **kwargs)


def federation_oracle(engine):
    """Federation.integrate over the engine's current snapshots."""
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for source in engine.sources():
        federation.add_source(
            source,
            engine.source_snapshot(source),
            reliability=engine.reliability(source),
        )
    integrated, _ = federation.integrate(name="R")
    return integrated


class TestLogRecovery:
    def test_kill_and_reopen_recovers_flushed_state(self, tmp_path):
        backend = log_backend(tmp_path)
        engine = durable_engine(backend, table_ra().schema)
        engine.set_reliability("daily", Fraction(9, 10))
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        engine.flush()
        for etuple in table_rb():
            engine.upsert("tribune", etuple)
        engine.retract("daily", ("wok",))
        engine.flush()
        watermark, relation = engine.watermark, engine.relation
        # Events after the last flush: accepted, never durable.
        engine.upsert("tribune", next(iter(table_rb())))
        backend.close()  # the "crash": the engine object is abandoned

        with log_backend(tmp_path) as reopened:
            recovered = reopened.recover_stream("R")
            assert recovered.watermark == watermark
            assert recovered.relation == relation
            assert list(recovered.relation.keys()) == list(relation.keys())
            assert recovered.sources() == ("daily", "tribune")
            assert recovered.reliability("daily") == Fraction(9, 10)
            # The last upsert (never flushed) is gone, as it must be.
            assert recovered.pending_events == 0
            # ... and the recovery agrees with the batch oracle.
            assert recovered.relation.same_tuples(federation_oracle(recovered))

    def test_recovered_engine_keeps_journaling(self, tmp_path):
        backend = log_backend(tmp_path)
        engine = durable_engine(backend, table_ra().schema)
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        engine.flush()
        backend.close()

        with log_backend(tmp_path) as reopened:
            recovered = reopened.recover_stream("R")
            assert recovered.backend is reopened
            for etuple in table_rb():
                recovered.upsert("tribune", etuple)
            recovered.flush()
            final = recovered.relation
            watermark = recovered.watermark

        with log_backend(tmp_path) as again:
            twice = again.recover_stream("R")
            assert twice.relation == final
            assert twice.watermark == watermark

    def test_recovery_survives_compaction(self, tmp_path):
        backend = log_backend(tmp_path)
        engine = durable_engine(backend, table_ra().schema)
        engine.set_reliability("daily", Fraction(3, 4))
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        engine.flush()
        for etuple in table_rb():
            engine.upsert("tribune", etuple)
        engine.retract("daily", ("olive",))
        engine.flush()
        relation, watermark = engine.relation, engine.watermark
        snapshots = {
            source: engine.source_snapshot(source)
            for source in engine.sources()
        }
        backend.compact()

        recovered = backend.recover_stream("R")
        assert recovered.relation == relation
        assert recovered.watermark == watermark
        for source, snapshot in snapshots.items():
            assert recovered.source_snapshot(source).same_tuples(snapshot)
        backend.close()

    def test_unflushed_wal_tail_is_discarded(self, tmp_path):
        """Event records with no closing batch marker (a crash between
        the event appends and the marker) do not replay."""
        backend = log_backend(tmp_path)
        engine = durable_engine(backend, table_ra().schema)
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        engine.flush()
        relation = engine.relation
        # Forge a torn batch: events on disk, no batch record.
        backend._append(
            {
                "record": "event",
                "stream": "R",
                "event": {
                    "op": "reliability",
                    "source": "daily",
                    "value": "1/2",
                },
            }
        )
        backend.close()

        with log_backend(tmp_path) as reopened:
            recovered = reopened.recover_stream("R")
            assert recovered.relation == relation
            assert recovered.reliability("daily") == 1

    def test_rejected_events_never_reach_the_journal(self, tmp_path):
        """A raise-policy total conflict rolls the upsert back before it
        is journaled: recovery replays only accepted events."""
        schema = table_ra().schema
        backend = log_backend(tmp_path)
        engine = durable_engine(
            backend, schema, merger=TupleMerger(on_conflict="raise")
        )
        domain = schema.attribute("rating").domain
        base = table_ra().get(("wok",)).with_values(
            {"rating": EvidenceSet.parse("[ex^1]", domain)}
        )
        engine.upsert("daily", base)
        conflicting = base.with_values(
            {"rating": EvidenceSet.parse("[gd^1]", domain)}
        )
        with pytest.raises(TotalConflictError):
            engine.upsert("tribune", conflicting)
        engine.flush()
        backend.close()

        with log_backend(tmp_path) as reopened:
            recovered = reopened.recover_stream("R")
            assert recovered.sources() == ("daily",)
            assert recovered.relation == engine.relation

    def test_failed_batch_write_keeps_events_for_the_next_flush(
        self, tmp_path, monkeypatch
    ):
        """If the backend write fails mid-flush, the buffered events are
        restored: the next successful flush journals them, so recovery
        never silently loses upserts behind an advanced watermark."""
        backend = log_backend(tmp_path)
        engine = durable_engine(backend, table_ra().schema)
        engine.upsert("daily", table_ra().get(("wok",)))
        engine.flush()

        def exploding(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(backend, "write_batch", exploding)
        engine.upsert("daily", table_ra().get(("garden",)))
        with pytest.raises(OSError):
            engine.flush()
        monkeypatch.undo()

        engine.upsert("daily", table_ra().get(("olive",)))
        engine.flush()
        relation, watermark = engine.relation, engine.watermark
        backend.close()

        with log_backend(tmp_path) as reopened:
            recovered = reopened.recover_stream("R")
            assert recovered.relation == relation
            assert recovered.watermark == watermark
            assert len(recovered.relation) == 3  # garden survived the outage

    def test_empty_flush_skips_the_backend_entirely(self, tmp_path):
        """A quiet periodic flush must not even reach the backend: the
        store already holds this relation and watermark exactly."""
        url = f"sqlite:{tmp_path / 'snap.sqlite'}"
        with open_backend(url) as backend:
            engine = durable_engine(backend, table_ra().schema)
            engine.upsert("daily", table_ra().get(("wok",)))
            engine.flush()

            calls = []
            original = backend.write_batch
            backend.write_batch = (
                lambda *a, **k: calls.append(a) or original(*a, **k)
            )
            skips_before = engine.stats().empty_flush_skips
            engine.flush()  # no events accepted: empty batch, skipped
            engine.set_reliability("daily", Fraction(1, 2))
            engine.flush()
            backend.write_batch = original
            assert len(calls) == 1  # only the non-empty batch persists
            assert engine.stats().empty_flush_skips == skips_before + 1
            assert backend.stream_watermark("R") == engine.watermark

    def test_unknown_stream_is_clean_error(self, tmp_path):
        with log_backend(tmp_path) as backend:
            engine = durable_engine(backend, table_ra().schema)
            engine.upsert("daily", next(iter(table_ra())))
            engine.flush()
            with pytest.raises(SerializationError, match="logged: R"):
                backend.recover_stream("GHOST")

    def test_reattach_with_different_policy_rejected(self, tmp_path):
        with log_backend(tmp_path) as backend:
            durable_engine(backend, table_ra().schema)
            with pytest.raises(SerializationError, match="on_conflict"):
                StreamEngine(
                    table_ra().schema,
                    name="R",
                    merger=TupleMerger(on_conflict="raise"),
                    backend=backend,
                )

    def test_recovery_republishes_into_a_database(self, tmp_path):
        backend = log_backend(tmp_path)
        engine = durable_engine(backend, table_ra().schema)
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        engine.flush()
        backend.close()

        db = Database("d")
        with log_backend(tmp_path) as reopened:
            recovered = reopened.recover_stream("R", database=db)
            assert "R" in db
            assert db.get("R") == recovered.relation


class TestSnapshotDurability:
    @pytest.mark.parametrize("scheme", ["json", "sqlite"])
    def test_flush_persists_relation_and_watermark(self, scheme, tmp_path):
        url = f"{scheme}:{tmp_path / 'snap'}"
        with open_backend(url) as backend:
            engine = durable_engine(backend, table_ra().schema)
            for etuple in table_ra():
                engine.upsert("daily", etuple)
            engine.flush()
            assert backend.stream_watermark("R") == engine.watermark == 6
            assert backend.load_relation("R") == engine.relation
        # ... and both survive a reopen.
        with open_backend(url) as reopened:
            assert reopened.stream_watermark("R") == 6
            assert len(reopened.load_relation("R")) == 6


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_sources=st.integers(min_value=2, max_value=3),
    n_events=st.integers(min_value=1, max_value=30),
    compact=st.booleans(),
)
def test_random_workloads_recover_exactly(seed, n_sources, n_events, compact):
    """Any interleaving of upserts / retractions / reliability changes
    with random flush points recovers bit-for-bit: relation, watermark,
    source snapshots -- matching both the pre-crash engine and the
    ``Federation.integrate`` oracle (with or without compaction)."""
    rng = random.Random(seed)
    config = SyntheticConfig(
        n_tuples=6, conflict=0.6, ignorance=1.0, overlap=1.0, seed=seed
    )
    pools = {
        f"s{index}": tuple(synthetic_relation(config, f"s{index}"))
        for index in range(n_sources)
    }
    schema = pools["s0"][0].schema

    with tempfile.TemporaryDirectory() as directory:
        backend = open_backend(f"log:{Path(directory) / 'wal.jsonl'}")
        engine = durable_engine(backend, schema)
        asserted: dict[str, set] = {name: set() for name in pools}
        for _ in range(n_events):
            roll = rng.random()
            retractable = [name for name in pools if asserted[name]]
            if roll < 0.65 or not retractable:
                source = rng.choice(sorted(pools))
                etuple = rng.choice(pools[source])
                engine.upsert(source, etuple)
                asserted[source].add(etuple.key())
            elif roll < 0.85:
                source = rng.choice(retractable)
                key = rng.choice(sorted(asserted[source]))
                engine.retract(source, key)
                asserted[source].remove(key)
            else:
                engine.set_reliability(
                    rng.choice(sorted(pools)), rng.choice(RELIABILITIES)
                )
            if rng.random() < 0.2:
                engine.flush()
        engine.flush()
        expected_relation = engine.relation
        expected_watermark = engine.watermark
        expected_snapshots = {
            source: engine.source_snapshot(source)
            for source in engine.sources()
        }
        if compact:
            backend.compact()
        recovered = backend.recover_stream("R")
        assert recovered.relation == expected_relation
        assert list(recovered.relation.keys()) == list(expected_relation.keys())
        assert recovered.watermark == expected_watermark
        assert tuple(recovered.sources()) == tuple(expected_snapshots)
        for source, snapshot in expected_snapshots.items():
            assert recovered.source_snapshot(source).same_tuples(snapshot)
        assert recovered.relation.same_tuples(federation_oracle(recovered))
        backend.close()
