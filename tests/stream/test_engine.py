"""Unit tests for the streaming integration engine."""

from fractions import Fraction

import pytest

from repro.algebra.union import union
from repro.errors import StreamError, TotalConflictError
from repro.integration import Federation, TupleMerger
from repro.datasets.restaurants import table_ra, table_rb
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.storage import Database
from repro.stream import StreamEngine


@pytest.fixture
def schema():
    return table_ra().schema


def feed(engine, source, relation):
    for etuple in relation:
        engine.upsert(source, etuple)


class TestIngestion:
    def test_two_sources_equal_extended_union(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        feed(engine, "tribune", table_rb())
        engine.flush()
        assert engine.relation.same_tuples(
            union(table_ra(), table_rb(), name="R")
        )

    def test_interleaved_arrival_order_is_irrelevant(self, schema):
        ra, rb = table_ra(), table_rb()
        engine = StreamEngine(schema, name="R")
        # Alternate sources, flush mid-stream: exactness must survive
        # any interleaving and batching.
        pairs = [("daily", t) for t in ra] + [("tribune", t) for t in rb]
        pairs[1::2], pairs[::2] = pairs[: len(pairs) // 2], pairs[len(pairs) // 2:]
        for index, (source, etuple) in enumerate(pairs):
            engine.upsert(source, etuple)
            if index % 3 == 0:
                engine.flush()
        engine.flush()
        assert engine.relation.same_tuples(union(ra, rb, name="R"))

    def test_incremental_arrival_costs_one_combination(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        engine.flush()
        before = engine.stats().combinations
        engine.upsert("tribune", table_rb().get(("wok",)))
        engine.flush()
        assert engine.stats().combinations == before + 1
        assert engine.stats().refolds == 0

    def test_stats_split_combinations_by_evidence_path(self, schema):
        """Enumerated attributes (speciality, best_dish, rating) combine
        on the compiled kernel; open-domain attributes (street, bldg_no,
        phone) fall back to the frozenset path.  RA/RB share 5 matched
        entities, so each path sees 5 x 3 evidence combinations."""
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        feed(engine, "tribune", table_rb())
        engine.flush()
        stats = engine.stats()
        assert stats.kernel_combinations == 15
        assert stats.fallback_combinations == 15
        assert "kernel-path" in stats.summary()

    def test_upsert_accepts_values_mapping(self):
        small = RelationSchema(
            "S",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute(
                    "v", EnumeratedDomain("v", ["a", "b", "c"]), uncertain=True
                ),
            ],
        )
        engine = StreamEngine(small, name="S")
        key = engine.upsert(
            "daily",
            {"k": "wok", "v": "[a^1/4, b^3/4]"},
            membership=("1/2", 1),
        )
        assert key == ("wok",)
        engine.flush()
        row = engine.relation.get(("wok",))
        assert row.membership.sn == Fraction(1, 2)

    def test_overwrite_is_exact(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        feed(engine, "tribune", table_rb())
        # Re-assert a daily tuple with different evidence: the entity
        # must re-fold, not double-count the source.
        revised = table_ra().get(("wok",)).with_values(
            {"rating": "[gd^1/2, avg^1/2]"}
        )
        engine.upsert("daily", revised)
        engine.flush()
        expected_sources = ExtendedRelation(
            table_ra().schema,
            [revised if t.key() == ("wok",) else t for t in table_ra()],
        )
        assert engine.relation.same_tuples(
            union(expected_sources, table_rb(), name="R")
        )

    def test_sn_zero_upsert_rejected(self, schema):
        engine = StreamEngine(schema, name="R")
        etuple = table_ra().get(("wok",)).with_membership((0, 1))
        with pytest.raises(StreamError, match="sn = 0"):
            engine.upsert("daily", etuple)


class TestRetraction:
    def test_retract_refolds_survivors(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        feed(engine, "tribune", table_rb())
        engine.flush()
        engine.retract("tribune", ("wok",))
        delta = engine.flush()
        assert ("wok",) in delta.updated
        assert engine.relation.get(("wok",)) is not None
        # wok is now supported by daily alone.
        assert engine.relation.get(("wok",)).evidence("rating") == table_ra().get(
            ("wok",)
        ).evidence("rating")

    def test_retract_last_contribution_removes_entity(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        engine.flush()
        engine.retract("daily", ("wok",))
        delta = engine.flush()
        assert ("wok",) in delta.removed
        assert engine.relation.get(("wok",)) is None
        assert len(engine.relation) == len(table_ra()) - 1

    def test_retract_unknown_tuple_rejected(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        with pytest.raises(StreamError, match="no tuple"):
            engine.retract("daily", ("nowhere",))

    def test_retract_unknown_source_rejected(self, schema):
        engine = StreamEngine(schema, name="R")
        with pytest.raises(StreamError, match="unknown source"):
            engine.retract("ghost", ("wok",))


class TestReliability:
    def test_reliability_update_matches_federation(self, schema):
        engine = StreamEngine(schema, name="F")
        feed(engine, "a", table_ra())
        feed(engine, "b", table_rb())
        engine.set_reliability("b", "1/2")
        engine.flush()
        federation = Federation()
        federation.add_source("a", table_ra())
        federation.add_source("b", table_rb(), reliability="1/2")
        expected, _ = federation.integrate(name="F")
        assert engine.relation.same_tuples(expected)

    def test_register_with_reliability_up_front(self, schema):
        engine = StreamEngine(schema, name="F")
        engine.register_source("b", reliability="1/2")
        feed(engine, "a", table_ra())
        feed(engine, "b", table_rb())
        engine.flush()
        federation = Federation()
        # Registration order is the fold order.
        federation.add_source("b", table_rb(), reliability="1/2")
        federation.add_source("a", table_ra())
        expected, _ = federation.integrate(name="F")
        assert engine.relation.same_tuples(expected)

    def test_zero_reliability_source_is_identity(self, schema):
        engine = StreamEngine(schema, name="F")
        feed(engine, "a", table_ra())
        feed(engine, "b", table_rb())
        engine.set_reliability("b", 0)
        engine.flush()
        assert engine.relation.same_tuples(table_ra().with_name("F"))

    def test_bad_reliability_rejected(self, schema):
        engine = StreamEngine(schema, name="F")
        with pytest.raises(StreamError, match=r"\[0, 1\]"):
            engine.register_source("a", reliability=2)

    def test_duplicate_source_rejected(self, schema):
        engine = StreamEngine(schema, name="F")
        engine.register_source("a")
        with pytest.raises(StreamError, match="duplicate"):
            engine.register_source("a")


class TestConflicts:
    @pytest.fixture
    def conflict_schema(self):
        return RelationSchema(
            "C",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute(
                    "v", EnumeratedDomain("v", ["a", "b", "c"]), uncertain=True
                ),
            ],
        )

    def test_raise_policy_rolls_back_the_event(self, conflict_schema):
        engine = StreamEngine(conflict_schema, name="C")
        engine.upsert("s1", {"k": "x", "v": {"a": 1}})
        engine.flush()
        seq = engine.seq
        with pytest.raises(TotalConflictError):
            engine.upsert("s2", {"k": "x", "v": {"b": 1}})
        assert engine.seq == seq
        engine.flush()
        # The failed event left no trace: not in the integrated
        # relation, and the source it introduced is unregistered again.
        assert engine.relation.get(("x",)).evidence("v").format() == "[a^1]"
        assert engine.sources() == ("s1",)

    def test_drop_policy_marks_entity_conflicted(self, conflict_schema):
        engine = StreamEngine(
            conflict_schema, name="C", merger=TupleMerger(on_conflict="drop")
        )
        engine.upsert("s1", {"k": "x", "v": {"a": 1}})
        engine.upsert("s2", {"k": "x", "v": {"b": 1}})
        delta = engine.flush()
        assert ("x",) in delta.conflicted
        assert engine.relation.get(("x",)) is None

    def test_conflicted_entity_recovers_after_retraction(self, conflict_schema):
        engine = StreamEngine(
            conflict_schema, name="C", merger=TupleMerger(on_conflict="drop")
        )
        engine.upsert("s1", {"k": "x", "v": {"a": 1}})
        engine.upsert("s2", {"k": "x", "v": {"b": 1}})
        engine.flush()
        engine.retract("s2", ("x",))
        delta = engine.flush()
        assert ("x",) in delta.inserted
        assert engine.relation.get(("x",)).evidence("v").format() == "[a^1]"


class TestBatching:
    def test_autoflush_at_batch_size(self, schema):
        engine = StreamEngine(schema, name="R", batch_size=4)
        feed(engine, "daily", table_ra())  # 6 upserts -> one autoflush at 4
        assert len(engine.changelog) == 1
        assert engine.watermark == 4
        assert engine.pending_events == 2
        engine.flush()
        assert engine.watermark == 6

    def test_changelog_watermarks_are_monotone(self, schema):
        engine = StreamEngine(schema, name="R", batch_size=2)
        feed(engine, "daily", table_ra())
        feed(engine, "tribune", table_rb())
        watermarks = [delta.watermark for delta in engine.changelog]
        assert watermarks == sorted(watermarks)
        assert engine.changelog.total_events() == engine.watermark

    def test_empty_flush_is_recorded_but_changes_nothing(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        engine.flush()
        delta = engine.flush()
        assert delta.is_empty()
        assert delta.events == 0


class TestPublishing:
    def test_flush_publishes_and_bumps_version(self, schema):
        db = Database("live")
        db.add(table_ra())
        engine = StreamEngine(schema, name="R_LIVE", database=db)
        feed(engine, "daily", table_ra())
        engine.flush()
        assert "R_LIVE" in db
        version = db.version  # first publish: brand-new name
        engine.upsert("tribune", table_rb().get(("wok",)))
        engine.flush()
        assert db.version == version + 1

    def test_empty_flush_does_not_republish(self, schema):
        db = Database("live")
        engine = StreamEngine(schema, name="R_LIVE", database=db)
        feed(engine, "daily", table_ra())
        engine.flush()
        version = db.version
        engine.flush()
        assert db.version == version
        assert engine.stats().publishes == 1

    def test_subscription_refreshes_on_flush(self, schema):
        db = Database("live")
        engine = StreamEngine(schema, name="R_LIVE", database=db)
        feed(engine, "daily", table_ra())
        engine.flush()
        seen = []
        session = db.session()
        subscription = session.subscribe(
            "SELECT rname FROM R_LIVE WHERE rating IS {ex}",
            callback=lambda result: seen.append(len(result)),
        )
        assert subscription.result is not None
        feed(engine, "tribune", table_rb())
        engine.flush()
        assert subscription.refreshes == 2
        assert len(seen) == 2
        assert subscription.result.same_tuples(
            db.query("SELECT rname FROM R_LIVE WHERE rating IS {ex}")
        )

    def test_non_identifier_name_rejected_with_database(self, schema):
        with pytest.raises(StreamError, match="identifier"):
            StreamEngine(schema, name="not a name", database=Database())


class TestAccessors:
    def test_source_snapshot_round_trip(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        engine.retract("daily", ("wok",))
        snapshot = engine.source_snapshot("daily")
        assert len(snapshot) == len(table_ra()) - 1
        assert snapshot.get(("garden",)) is not None

    def test_repr_and_len(self, schema):
        engine = StreamEngine(schema, name="R")
        feed(engine, "daily", table_ra())
        assert len(engine) == len(table_ra())
        assert "daily" in repr(engine) or "1 sources" in repr(engine)


class TestFoldOrderDeterminism:
    """Under total-conflict fallbacks no fold order is canonical, so the
    engine pins one: the registration-order left fold of the final
    snapshots, regardless of arrival order or re-assertions."""

    @pytest.fixture
    def conflict_schema(self):
        return RelationSchema(
            "C",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute(
                    "v", EnumeratedDomain("v", ["a", "b", "c"]), uncertain=True
                ),
            ],
        )

    def _tuple(self, schema, focal):
        return ExtendedTuple(schema, {"k": "x", "v": {focal: 1}})

    def test_out_of_order_arrival_matches_registration_fold(
        self, conflict_schema
    ):
        # Registration order A, B, C with A=C={a}, B={b}: the canonical
        # left fold hits the A-B conflict first, goes vacuous, then C
        # restores {a}.  Arrival order A, C, B must publish the same.
        merger = TupleMerger(on_conflict="vacuous")
        arrival = StreamEngine(conflict_schema, name="C", merger=merger)
        for source in ("A", "B", "C"):
            arrival.register_source(source)
        arrival.upsert("A", self._tuple(conflict_schema, "a"))
        arrival.upsert("C", self._tuple(conflict_schema, "a"))
        arrival.upsert("B", self._tuple(conflict_schema, "b"))
        arrival.flush()

        canonical = StreamEngine(conflict_schema, name="C", merger=merger)
        canonical.upsert("A", self._tuple(conflict_schema, "a"))
        canonical.upsert("B", self._tuple(conflict_schema, "b"))
        canonical.upsert("C", self._tuple(conflict_schema, "a"))
        canonical.flush()
        assert arrival.relation.same_tuples(canonical.relation)

    def test_reassertion_is_a_semantic_no_op(self, conflict_schema):
        merger = TupleMerger(on_conflict="vacuous")
        engine = StreamEngine(conflict_schema, name="C", merger=merger)
        engine.register_source("A")
        engine.register_source("B")
        engine.register_source("C")
        engine.upsert("A", self._tuple(conflict_schema, "a"))
        engine.upsert("C", self._tuple(conflict_schema, "a"))
        engine.upsert("B", self._tuple(conflict_schema, "b"))
        engine.flush()
        before = engine.relation
        # Re-asserting an identical tuple must not change the published
        # relation (it re-folds, but in the same canonical order).
        engine.upsert("C", self._tuple(conflict_schema, "a"))
        delta = engine.flush()
        assert delta.is_empty()
        assert engine.relation.same_tuples(before)

    def test_rolled_back_upsert_leaves_no_phantom_conflicts(
        self, conflict_schema
    ):
        engine = StreamEngine(conflict_schema, name="C")  # on_conflict=raise
        engine.upsert("A", self._tuple(conflict_schema, "a"))
        with pytest.raises(TotalConflictError):
            engine.upsert("B", self._tuple(conflict_schema, "b"))
        delta = engine.flush()
        # The rejected event was rolled back entirely: the audit trail
        # must not report conflicts for evidence that is not in the
        # integrated state.
        assert delta.conflicts == ()
        assert delta.conflicted == ()

    def test_conflicting_overwrite_raises_eagerly_and_rolls_back(
        self, conflict_schema
    ):
        """Under "raise", a conflicting *overwrite* (dirty path) must
        raise at the upsert itself -- deferring it to flush would wedge
        the stream -- and restore the source's previous assertion."""
        engine = StreamEngine(conflict_schema, name="C")  # on_conflict=raise
        engine.upsert("A", self._tuple(conflict_schema, "a"))
        engine.flush()
        engine.upsert("B", self._tuple(conflict_schema, "a"))  # fast path, ok
        with pytest.raises(TotalConflictError):
            engine.upsert("B", self._tuple(conflict_schema, "b"))
        # B's earlier assertion survives; flushing works and publishes it.
        assert engine.source_snapshot("B").get(("x",)) is not None
        engine.flush()
        assert engine.relation.get(("x",)).evidence("v").format() == "[a^1]"

    def test_out_of_order_conflicting_upsert_cannot_wedge_the_stream(
        self, conflict_schema
    ):
        """The review counterexample: an out-of-order arrival used to be
        accepted and then fail every flush under "raise"."""
        engine = StreamEngine(conflict_schema, name="C")
        engine.register_source("A")
        engine.register_source("B")
        engine.upsert("B", self._tuple(conflict_schema, "a"))
        with pytest.raises(TotalConflictError):
            engine.upsert("A", self._tuple(conflict_schema, "b"))  # out of order
        delta = engine.flush()  # must not raise: the event was rolled back
        assert delta.inserted == (("x",),)
        assert engine.relation.get(("x",)).evidence("v").format() == "[a^1]"
        assert engine.watermark == engine.seq

    def test_reliability_raise_exposing_conflict_is_reverted(
        self, conflict_schema
    ):
        """Discount ignorance can mask a total conflict; removing it via
        set_reliability must raise eagerly and revert entirely."""
        engine = StreamEngine(conflict_schema, name="C")
        engine.register_source("A")
        engine.register_source("B", reliability="1/2")  # masks the conflict
        engine.upsert("A", self._tuple(conflict_schema, "a"))
        engine.upsert("B", self._tuple(conflict_schema, "b"))
        engine.flush()
        before = engine.relation
        with pytest.raises(TotalConflictError):
            engine.set_reliability("B", 1)
        assert engine.reliability("B") == Fraction(1, 2)
        delta = engine.flush()  # reverted: nothing changed, nothing wedged
        assert delta.is_empty()
        assert engine.relation.same_tuples(before)

    def test_same_batch_overwrite_does_not_duplicate_conflicts(self):
        schema = RelationSchema(
            "C",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute(
                    "v", EnumeratedDomain("v", ["a", "b", "c"]), uncertain=True
                ),
            ],
        )
        engine = StreamEngine(
            schema, name="C", merger=TupleMerger(on_conflict="vacuous")
        )
        engine.upsert("A", ExtendedTuple(schema, {"k": "x", "v": "[a^1/2, *^1/2]"}))
        conflicting = ExtendedTuple(schema, {"k": "x", "v": "[b^1/2, *^1/2]"})
        engine.upsert("B", conflicting)       # fast path: records kappa=1/4
        engine.upsert("B", conflicting)       # same-batch overwrite -> refold
        delta = engine.flush()
        # One actual conflict in the published fold -> exactly one record.
        assert len(delta.conflicts) == 1

    def test_rejected_first_event_does_not_register_the_source(
        self, conflict_schema
    ):
        engine = StreamEngine(conflict_schema, name="C")  # on_conflict=raise
        engine.upsert("A", self._tuple(conflict_schema, "a"))
        with pytest.raises(TotalConflictError):
            engine.upsert("B", self._tuple(conflict_schema, "b"))
        assert engine.sources() == ("A",)
        # A later registration with an explicit reliability still works.
        engine.register_source("B", reliability="1/2")
        assert engine.sources() == ("A", "B")

    def test_sn_zero_first_event_does_not_register_the_source(self):
        from repro.datasets.restaurants import table_ra

        engine = StreamEngine(table_ra().schema, name="R")
        bad = table_ra().get(("wok",)).with_membership((0, 1))
        with pytest.raises(StreamError):
            engine.upsert("ghost", bad)
        assert engine.sources() == ()

    def test_raising_subscriber_does_not_lose_the_batch(self, conflict_schema):
        db = Database("live")
        engine = StreamEngine(conflict_schema, name="C", database=db)
        engine.upsert("A", self._tuple(conflict_schema, "a"))
        engine.flush()
        def boom(result):
            raise RuntimeError("subscriber bug")
        subscription = db.session().subscribe("SELECT k FROM C", callback=boom)
        assert isinstance(subscription.callback_error, RuntimeError)
        assert subscription.error is None  # the query itself succeeded
        engine.upsert("A", self._tuple(conflict_schema, "b"))
        delta = engine.flush()  # must not raise out of the flush
        # ... and the batch is fully recorded in the audit trail.
        assert delta.updated == (("x",),)
        assert engine.changelog.last is delta
        assert engine.watermark == engine.seq


class TestChangelogRetention:
    def test_retention_cap_trims_oldest(self, schema):
        engine = StreamEngine(
            schema, name="R", batch_size=1, max_changelog_batches=3
        )
        feed(engine, "daily", table_ra())  # 6 events -> 6 batches
        assert len(engine.changelog) == 3
        assert engine.changelog.total_batches == 6
        # Batch numbering and the watermark keep counting across trims.
        assert [d.batch for d in engine.changelog] == [4, 5, 6]
        assert engine.changelog.watermark == 6

    def test_unbounded_retention_opt_in(self, schema):
        engine = StreamEngine(
            schema, name="R", batch_size=1, max_changelog_batches=None
        )
        feed(engine, "daily", table_ra())
        assert len(engine.changelog) == 6


class TestConflictReporting:
    def _partial(self, schema, focal):
        return ExtendedTuple(schema, {"k": "x", "v": f"[{focal}^1/2, *^1/2]"})

    def _schema(self):
        return RelationSchema(
            "C",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute(
                    "v", EnumeratedDomain("v", ["a", "b", "c"]), uncertain=True
                ),
            ],
        )

    def test_reported_conflicts_do_not_depend_on_arrival_order(self):
        """A batch reports the touched entities' current-fold records,
        so re-folding (out-of-order arrival) and fold-extension (in
        order) report identically."""
        schema = self._schema()

        def run(order):
            engine = StreamEngine(
                schema, name="C", merger=TupleMerger(on_conflict="vacuous")
            )
            engine.register_source("A")
            engine.register_source("B")
            engine.upsert("A" if order == "in" else "B",
                          self._partial(schema, "a" if order == "in" else "b"))
            engine.flush()
            engine.upsert("B" if order == "in" else "A",
                          self._partial(schema, "b" if order == "in" else "a"))
            return engine.flush()

        in_order, out_of_order = run("in"), run("out")
        assert len(in_order.conflicts) == len(out_of_order.conflicts) == 1
        assert in_order.conflicts[0].kappa == out_of_order.conflicts[0].kappa

    def test_untouched_conflicting_entity_is_not_re_reported(self):
        schema = self._schema()
        engine = StreamEngine(
            schema, name="C", merger=TupleMerger(on_conflict="vacuous")
        )
        engine.upsert("A", self._partial(schema, "a"))
        engine.upsert("B", self._partial(schema, "b"))
        first = engine.flush()
        assert len(first.conflicts) == 1
        # A batch touching a different entity says nothing about x.
        engine.upsert("A", ExtendedTuple(schema, {"k": "y", "v": "[c^1]"}))
        second = engine.flush()
        assert second.conflicts == ()


class TestReliabilityEdges:
    def test_set_reliability_auto_registers_unknown_source(self, schema):
        engine = StreamEngine(schema, name="F")
        engine.upsert("a", table_ra().get(("wok",)))
        engine.set_reliability("b", "1/2")  # before b's first tuple
        assert engine.sources() == ("a", "b")
        assert engine.reliability("b") == Fraction(1, 2)
        engine.upsert("b", table_rb().get(("wok",)))
        engine.flush()
        federation = Federation()
        federation.add_source("a", ExtendedRelation(
            schema, [table_ra().get(("wok",))]))
        federation.add_source("b", ExtendedRelation(
            schema, [table_rb().get(("wok",))]), reliability="1/2")
        expected, _ = federation.integrate(name="F")
        assert engine.relation.same_tuples(expected)

    def test_noop_reliability_update_costs_nothing(self, schema):
        engine = StreamEngine(schema, name="F")
        feed(engine, "a", table_ra())
        feed(engine, "b", table_rb())
        engine.flush()
        seq, combinations = engine.seq, engine.stats().combinations
        engine.set_reliability("b", 1)  # already 1: no-op
        assert engine.seq == seq
        delta = engine.flush()
        assert delta.is_empty()
        assert engine.stats().combinations == combinations
