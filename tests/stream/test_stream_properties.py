"""Property-based equivalence: streaming == batch, for any event order.

Dempster's rule is associative and commutative, so *any* interleaving,
batching and retraction pattern pushed through the
:class:`~repro.stream.StreamEngine` must land on exactly the relation
``Federation.integrate`` computes from the final per-source snapshots.

The generated workloads keep full ignorance mass on every evidence set
(``ignorance=1.0``), which guarantees ``kappa < 1`` at every pairwise
combination: order independence only holds on the conflict-free path,
because the total-conflict fallback (like any exception handling) is
not associative -- the same caveat the federation permutation tests
document.
"""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.integration import Federation, TupleMerger
from repro.model.relation import ExtendedRelation
from repro.stream import StreamEngine

RELIABILITIES = (1, Fraction(1, 2), Fraction(3, 4), Fraction(9, 10))


def _pools(n_sources: int, seed: int):
    """Per-source pools of candidate tuples over one key universe.

    Each source gets two differently-seeded pools so re-upserting a key
    can genuinely change its evidence, not just repeat it.
    """
    config = SyntheticConfig(
        n_tuples=8, conflict=0.6, ignorance=1.0, overlap=1.0, seed=seed
    )
    pools = {}
    for index in range(n_sources):
        name = f"s{index}"
        pools[name] = [
            tuple(synthetic_relation(config, name)),
            tuple(
                synthetic_relation(
                    SyntheticConfig(
                        n_tuples=8,
                        conflict=0.6,
                        ignorance=1.0,
                        overlap=1.0,
                        seed=seed + 101,
                    ),
                    name,
                )
            ),
        ]
    return pools


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_sources=st.integers(min_value=2, max_value=4),
    n_events=st.integers(min_value=1, max_value=50),
    batch_size=st.integers(min_value=1, max_value=9),
)
def test_any_event_sequence_equals_batch_integration(
    seed, n_sources, n_events, batch_size
):
    rng = random.Random(seed)
    pools = _pools(n_sources, seed)
    schema = pools["s0"][0][0].schema
    engine = StreamEngine(
        schema,
        name="F",
        merger=TupleMerger(on_conflict="vacuous"),
        batch_size=batch_size,
    )
    snapshots = {name: {} for name in pools}
    reliabilities = {name: 1 for name in pools}
    registered = []

    for _ in range(n_events):
        roll = rng.random()
        asserting = [name for name in registered if snapshots[name]]
        if roll < 0.70 or not asserting:
            source = rng.choice(sorted(pools))
            etuple = rng.choice(rng.choice(pools[source]))
            engine.upsert(source, etuple)
            if source not in registered:
                registered.append(source)
            snapshots[source][etuple.key()] = etuple
        elif roll < 0.90:
            source = rng.choice(asserting)
            key = rng.choice(sorted(snapshots[source]))
            engine.retract(source, key)
            del snapshots[source][key]
        else:
            source = rng.choice(registered)
            reliability = rng.choice(RELIABILITIES)
            engine.set_reliability(source, reliability)
            reliabilities[source] = reliability
    engine.flush()

    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for source in engine.sources():
        federation.add_source(
            source,
            ExtendedRelation(
                schema.with_name(source), list(snapshots[source].values())
            ),
            reliability=reliabilities[source],
        )
    expected, _ = federation.integrate(name="F")
    assert engine.relation.same_tuples(expected)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_flush_positions_do_not_change_the_result(seed):
    """The same events with different batching land on the same relation."""
    rng = random.Random(seed)
    pools = _pools(3, seed)
    schema = pools["s0"][0][0].schema
    events = []
    for _ in range(30):
        source = rng.choice(sorted(pools))
        events.append((source, rng.choice(rng.choice(pools[source]))))

    results = []
    for batch_size in (1, 7, None):
        engine = StreamEngine(
            schema,
            name="F",
            merger=TupleMerger(on_conflict="vacuous"),
            batch_size=batch_size,
        )
        for source, etuple in events:
            engine.upsert(source, etuple)
        engine.flush()
        results.append(engine.relation)
    assert results[0].same_tuples(results[1])
    assert results[0].same_tuples(results[2])
