"""JSONL event encoding, decoding and replay."""

from fractions import Fraction

import pytest

from repro.algebra.union import union
from repro.errors import StreamError
from repro.datasets.restaurants import table_ra, table_rb
from repro.stream import (
    FlushEvent,
    ReliabilityEvent,
    RetractEvent,
    StreamEngine,
    UpsertEvent,
    event_from_json,
    event_to_json,
    read_events,
    relation_to_events,
    replay,
    write_events,
)


def round_trip(event):
    return event_from_json(event_to_json(event))


class TestEncoding:
    def test_upsert_round_trip(self):
        event = UpsertEvent(
            "daily",
            {"k": "wok", "v": "[a^1/4, b^3/4]"},
            membership=(Fraction(1, 2), 1),
        )
        assert round_trip(event) == event

    def test_fraction_scalars_stay_distinct_from_text(self):
        event = UpsertEvent("daily", {"k": "1/2", "v": Fraction(1, 2)})
        decoded = round_trip(event)
        assert decoded.values["k"] == "1/2"
        assert decoded.values["v"] == Fraction(1, 2)

    def test_retract_round_trip(self):
        assert round_trip(RetractEvent("daily", ("wok",))) == RetractEvent(
            "daily", ("wok",)
        )

    def test_reliability_round_trip(self):
        event = ReliabilityEvent("daily", 1)
        assert round_trip(event) == event

    def test_flush_round_trip(self):
        assert round_trip(FlushEvent()) == FlushEvent()

    def test_unknown_op_rejected(self):
        with pytest.raises(StreamError, match="unknown event op"):
            event_from_json({"op": "compact"})

    def test_malformed_event_rejected(self):
        with pytest.raises(StreamError, match="malformed"):
            event_from_json({"op": "upsert", "source": "daily"})


class TestFiles:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = relation_to_events(table_ra(), "daily") + [FlushEvent()]
        written = write_events(events, path)
        assert written == len(events)
        assert list(read_events(path)) == events

    def test_bad_json_line_reports_position(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"op": "flush"}\nnot json\n')
        with pytest.raises(StreamError, match=":2"):
            list(read_events(path))


class TestReplay:
    def test_replay_reproduces_batch_union(self):
        events = (
            relation_to_events(table_ra(), "daily")
            + [FlushEvent()]
            + relation_to_events(table_rb(), "tribune")
        )
        engine = StreamEngine(table_ra().schema, name="R")
        report = replay(engine, events)
        assert report.upserts == len(table_ra()) + len(table_rb())
        assert report.flushes == 2  # one explicit, one trailing
        assert engine.relation.same_tuples(
            union(table_ra(), table_rb(), name="R")
        )

    def test_replay_through_serialized_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events(
            relation_to_events(table_ra(), "daily")
            + relation_to_events(table_rb(), "tribune"),
            path,
        )
        engine = StreamEngine(table_ra().schema, name="R")
        replay(engine, read_events(path))
        assert engine.relation.same_tuples(
            union(table_ra(), table_rb(), name="R")
        )

    def test_replay_flushes_even_an_empty_stream(self):
        engine = StreamEngine(table_ra().schema, name="R")
        report = replay(engine, [])
        assert report.events == 0
        assert report.flushes == 1
        assert len(engine.relation) == 0

    def test_reliability_event_may_precede_the_sources_first_upsert(self):
        from repro.integration import Federation

        events = [ReliabilityEvent("tribune", Fraction(1, 2))]
        events += relation_to_events(table_ra(), "daily")
        events += relation_to_events(table_rb(), "tribune")
        engine = StreamEngine(table_ra().schema, name="F")
        report = replay(engine, events)
        assert report.reliability_updates == 1
        federation = Federation()
        federation.add_source("tribune", table_rb(), reliability="1/2")
        federation.add_source("daily", table_ra())
        expected, _ = federation.integrate(name="F")
        assert engine.relation.same_tuples(expected)
