"""BACKEND fixture: the full surface, bumping through a helper."""

import abc


class StorageBackend(abc.ABC):
    @abc.abstractmethod
    def catalog_version(self):
        ...

    @abc.abstractmethod
    def _save_relation(self, relation, partitions):
        ...

    @abc.abstractmethod
    def _delete_relation(self, name):
        ...


class CompleteBackend(StorageBackend):
    def __init__(self):
        self.rows = {}
        self.meta = {"catalog_version": 0}

    def catalog_version(self):
        return self.meta["catalog_version"]

    def _bump_catalog_version(self):
        self.meta["catalog_version"] += 1

    def _save_relation(self, relation, partitions):
        self.rows[relation] = partitions
        self._bump_catalog_version()

    def _delete_relation(self, name):
        self.rows.pop(name, None)
        self._bump_catalog_version()
