"""EXACT fixture: one violation per rule, all on mass-value paths."""


def scale(mass):
    weight = 0.5
    as_float = float(mass)
    third = mass / 3
    return weight, as_float, third
