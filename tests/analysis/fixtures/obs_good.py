"""OBS fixture: the legal ways to count things.

Same-package stats stay mutable (the owning layer counting its own
work); everything else goes through the registry; foreign stats may be
read freely.
"""

from repro.ds.kernel import STATS as KERNEL_STATS
from repro.obs.registry import registry

from .kernel import STATS


def count_local_work():
    STATS.bump("kernel_combinations")  # same package: the owner counts


def count_via_registry(amount):
    registry().counter("layer.custom.events").inc(amount)


def read_foreign_snapshot():
    return KERNEL_STATS.snapshot()  # reading is always fine
