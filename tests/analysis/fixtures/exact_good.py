"""EXACT fixture: exact Fraction arithmetic, nothing to flag."""

from fractions import Fraction


def scale(mass):
    weight = Fraction(1, 2)
    third = Fraction(mass) / Fraction(3)
    return weight * third
