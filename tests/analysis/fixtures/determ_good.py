"""DETERM fixture: every set reaches iteration through sorted()."""


class Collector:
    def __init__(self):
        self.touched = set()

    def drain(self):
        return [key for key in sorted(self.touched)]


def serialize(values):
    members = set(values)
    ordered = []
    for item in sorted(members):
        ordered.append(item)
    if "a" in members:
        ordered.append(len(members))
    ordered.extend(sorted(set(values) | {"c"}))
    return ordered
