"""DETERM fixture (query layer): the clock inside a fingerprint."""

import time


def fingerprint(plan):
    return (repr(plan), time.time())
