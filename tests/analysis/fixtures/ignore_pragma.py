"""Escape-hatch fixture: every violation carries an ignore pragma."""


def scale(mass):
    weight = 0.5  # repro: ignore[EXACT001]
    # repro: ignore[EXACT]
    as_float = float(mass)
    precise = 0.25  # repro: ignore
    return weight, as_float, precise
