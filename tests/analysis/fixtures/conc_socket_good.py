"""CONC003 fixture: the same shapes, done safely.

The task carries the *address* and connects on the worker side; the
only socket handed to a dispatch goes to a plain thread-pool
``.submit``, which shares the address space and is out of CONC003's
scope by design.
"""

import socket


def ship(pool, address):
    def encoded(common, item):
        with socket.create_connection(common) as connection:
            connection.sendall(item)
            return connection.recv(4096)

    return pool.submit_batch(encoded, address, [b"a"])


def thread_local_use(pool, address):
    connection = socket.create_connection(address)

    def task(item):
        return connection.sendall(item)

    # a thread pool shares the address space: handing it a socket is
    # legitimate, and .submit is not a wire dispatch
    return pool.submit(task, b"a")
