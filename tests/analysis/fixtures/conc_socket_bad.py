"""CONC003 fixture: sockets captured into wire-shipped batch tasks."""

import socket


def ship_named(pool, address):
    connection = socket.create_connection(address)

    def encoded(common, item):
        connection.sendall(item)
        return connection.recv(4096)

    return pool.submit_batch(encoded, None, [b"a"])


def ship_lambda(pool, host, port):
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.connect((host, port))
    return pool.map_encoded(
        lambda common, item: sock.send(item), None, [b"a"]
    )


def ship_with_bound(pool, address):
    with socket.create_connection(address) as wire:

        def encoded(common, item):
            return wire.recv(item)

        return pool.submit_batch(fn=encoded, common=None, items=[16])
