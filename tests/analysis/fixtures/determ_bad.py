"""DETERM fixture: set iteration order flowing into output."""


class Collector:
    def __init__(self):
        self.touched = set()

    def drain(self):
        return [key for key in self.touched]


def serialize(values):
    members = set(values)
    ordered = []
    for item in members:
        ordered.append(item)
    for item in {"b", "a"}:
        ordered.append(item)
    ordered.extend(list(set(values) | {"c"}))
    return ordered
