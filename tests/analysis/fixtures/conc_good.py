"""CONC fixture: the same shapes, done safely."""

import sqlite3
import threading

_LOCK = threading.Lock()
STATS = {"hits": 0}
HISTORY = []
_LOCAL = threading.local()


def record(key):
    with _LOCK:
        STATS["hits"] += 1
        HISTORY.append(key)
    _LOCAL.last = key


def run(pool, path):
    def task(key):
        with sqlite3.connect(path) as connection:
            return connection.execute("SELECT 1").fetchone()

    return pool.map(task, ["a"])


def ship(pool, path):
    def encoded(common, item):
        with open(path) as handle:
            return handle.readline()

    return pool.submit_batch(encoded, None, ["a"])
