"""CONC fixture: lost-update global writes and a fork-unsafe capture."""

import sqlite3

STATS = {"hits": 0}
HISTORY = []


def record(key):
    STATS["hits"] += 1
    HISTORY.append(key)


def run(pool, path):
    connection = sqlite3.connect(path)

    def task(key):
        return connection.execute("SELECT 1").fetchone()

    return pool.map(task, ["a"])


def ship(pool, path):
    with open(path) as handle:

        def encoded(common, item):
            return handle.readline()

        return pool.submit_batch(fn=encoded, common=None, items=["a"])
