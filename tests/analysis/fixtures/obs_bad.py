"""OBS fixture: cross-package mutation of another layer's STATS."""

from repro.ds.kernel import STATS as KERNEL_STATS
from repro.exec.executors import STATS


def count_combination():
    KERNEL_STATS.bump("kernel_combinations")  # OBS001: not our counter


def hand_rolled_increment(total):
    STATS.tasks += total  # OBS001: augmented assignment on exec's stats


def overwrite_field():
    KERNEL_STATS.compilations = 0  # OBS001: attribute store
