"""BACKEND fixture: an incomplete engine and a forgotten version bump."""

import abc


class StorageBackend(abc.ABC):
    @abc.abstractmethod
    def catalog_version(self):
        ...

    @abc.abstractmethod
    def _save_relation(self, relation, partitions):
        ...

    @abc.abstractmethod
    def _delete_relation(self, name):
        ...


class IncompleteBackend(StorageBackend):
    def catalog_version(self):
        return 0

    def _save_relation(self, relation, partitions):
        self._bump_catalog_version()

    def _bump_catalog_version(self):
        pass


class ForgetfulBackend(StorageBackend):
    def __init__(self):
        self.rows = {}
        self.version = 0

    def catalog_version(self):
        return self.version

    def _save_relation(self, relation, partitions):
        self.rows[relation] = partitions

    def _delete_relation(self, name):
        self.rows.pop(name, None)
