"""The analyzer over the repo's own source tree must match the baseline."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import analyze

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "analysis-baseline.json"


def test_shipped_source_tree_is_clean():
    result = analyze([SRC], baseline_path=BASELINE)
    assert result.findings == [], [f.render() for f in result.findings]
    assert result.stale_baseline == []
    assert result.clean


def test_deliberate_float_boundaries_carry_pragmas():
    result = analyze([SRC], baseline_path=BASELINE)
    # The float boundaries in measures/notation/mass/combination are
    # documented in-source with pragmas rather than baselined away.
    assert len(result.ignored) >= 10
    assert all(f.rule.startswith(("EXACT", "DETERM", "CONC")) for f in result.ignored)
