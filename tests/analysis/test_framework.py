"""Framework-level behaviour: pragmas, baselines, keys, CLI, reporting."""

from __future__ import annotations

import io
import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.lint import analyze, load_baseline, main, save_baseline
from repro.analysis.lint.base import parse_ignores
from repro.analysis.lint.baseline import BaselineError, split_by_baseline
from repro.analysis.lint.checkers.exact import ExactChecker
from repro.analysis.lint.findings import Finding, assign_keys, module_key

FIXTURES = Path(__file__).parent / "fixtures"


def place(tmp_path: Path, fixture: str, virtual: str) -> Path:
    target = tmp_path / virtual
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(FIXTURES / fixture, target)
    return target


class TestPragmaParsing:
    def test_trailing_pragma_targets_its_own_line(self):
        ignores = parse_ignores("x = 0.5  # repro: ignore[EXACT001]\n")
        assert ignores == {1: frozenset({"EXACT001"})}

    def test_comment_only_line_targets_the_next_line(self):
        ignores = parse_ignores("# repro: ignore[EXACT]\nx = float(y)\n")
        assert ignores == {2: frozenset({"EXACT"})}

    def test_bare_ignore_suppresses_everything(self):
        ignores = parse_ignores("x = 0.5  # repro: ignore\n")
        assert ignores == {1: frozenset({"*"})}

    def test_multiple_rules_in_one_pragma(self):
        ignores = parse_ignores("x = f()  # repro: ignore[EXACT002, DETERM001]\n")
        assert ignores == {1: frozenset({"EXACT002", "DETERM001"})}

    def test_family_prefix_matches_numbered_rules(self, tmp_path):
        target = tmp_path / "repro" / "ds" / "sample.py"
        target.parent.mkdir(parents=True)
        target.write_text("WEIGHT = 0.5  # repro: ignore[EXACT]\n")
        result = analyze([tmp_path], checkers=[ExactChecker()])
        assert result.findings == []
        assert len(result.ignored) == 1


class TestFindingKeys:
    def test_module_key_strips_everything_before_repro(self):
        assert module_key("/tmp/x/repro/ds/mass.py") == "repro/ds/mass.py"
        assert module_key("src/repro/algebra/ops.py") == "repro/algebra/ops.py"

    def test_keys_are_line_number_independent(self):
        def finding(line):
            return Finding(
                rule="EXACT001",
                path="src/repro/ds/mass.py",
                line=line,
                column=4,
                message="float literal",
                anchor="scale:0.5",
            )

        (first,) = assign_keys([finding(10)])
        (second,) = assign_keys([finding(99)])
        assert first.key == second.key == "EXACT001:repro/ds/mass.py:scale:0.5"

    def test_duplicate_anchors_get_ordinal_suffixes(self):
        findings = [
            Finding(
                rule="EXACT001",
                path="src/repro/ds/mass.py",
                line=line,
                column=0,
                message="float literal",
                anchor="scale:0.5",
            )
            for line in (3, 7)
        ]
        keyed = assign_keys(findings)
        assert keyed[0].key == "EXACT001:repro/ds/mass.py:scale:0.5"
        assert keyed[1].key == "EXACT001:repro/ds/mass.py:scale:0.5#2"


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        place(tmp_path, "exact_bad.py", "repro/ds/exact_bad.py")
        baseline_path = tmp_path / "baseline.json"

        first = analyze([tmp_path / "repro"], checkers=[ExactChecker()])
        assert len(first.findings) == 3
        save_baseline(baseline_path, first.findings)

        second = analyze(
            [tmp_path / "repro"],
            checkers=[ExactChecker()],
            baseline_path=baseline_path,
        )
        assert second.findings == []
        assert len(second.baselined) == 3
        assert second.stale_baseline == []
        assert second.clean

    def test_fixed_finding_turns_the_baseline_stale(self, tmp_path):
        target = place(tmp_path, "exact_bad.py", "repro/ds/exact_bad.py")
        baseline_path = tmp_path / "baseline.json"
        first = analyze([tmp_path / "repro"], checkers=[ExactChecker()])
        save_baseline(baseline_path, first.findings)

        target.write_text('"""Fixed."""\n')
        second = analyze(
            [tmp_path / "repro"],
            checkers=[ExactChecker()],
            baseline_path=baseline_path,
        )
        assert second.findings == []
        assert len(second.stale_baseline) == 3
        assert not second.clean

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(BaselineError):
            load_baseline(path)
        path.write_text("[]")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_split_partitions_new_known_and_stale(self):
        known = Finding(
            rule="EXACT001",
            path="src/repro/ds/a.py",
            line=1,
            column=0,
            message="m",
            anchor="f:0.5",
        )
        fresh = Finding(
            rule="EXACT002",
            path="src/repro/ds/a.py",
            line=2,
            column=0,
            message="m",
            anchor="f:float",
        )
        (known,) = assign_keys([known])
        (fresh,) = assign_keys([fresh])
        baseline = {
            known.key: {"key": known.key},
            "EXACT003:repro/ds/gone.py:f:div": {
                "key": "EXACT003:repro/ds/gone.py:f:div"
            },
        }
        new, baselined, stale = split_by_baseline([known, fresh], baseline)
        assert new == [fresh]
        assert baselined == [known]
        assert [entry["key"] for entry in stale] == [
            "EXACT003:repro/ds/gone.py:f:div"
        ]


class TestParseFailures:
    def test_syntax_error_becomes_a_parse_finding(self, tmp_path):
        target = tmp_path / "repro" / "ds" / "broken.py"
        target.parent.mkdir(parents=True)
        target.write_text("def broken(:\n")
        result = analyze([tmp_path], checkers=[ExactChecker()])
        assert [f.rule for f in result.findings] == ["PARSE"]


class TestCommandLine:
    def test_clean_tree_exits_zero(self, tmp_path):
        place(tmp_path, "exact_good.py", "repro/ds/exact_good.py")
        out = io.StringIO()
        assert main([str(tmp_path)], out=out) == 0
        assert "0 finding(s)" in out.getvalue()

    def test_findings_exit_nonzero_and_render_locations(self, tmp_path):
        place(tmp_path, "exact_bad.py", "repro/ds/exact_bad.py")
        out = io.StringIO()
        assert main([str(tmp_path)], out=out) == 1
        text = out.getvalue()
        assert "EXACT001" in text
        assert "exact_bad.py:5" in text

    def test_json_output_is_machine_readable(self, tmp_path):
        place(tmp_path, "exact_bad.py", "repro/ds/exact_bad.py")
        out = io.StringIO()
        assert main(["--json", str(tmp_path)], out=out) == 1
        payload = json.loads(out.getvalue())
        assert len(payload["findings"]) == 3
        assert {f["rule"] for f in payload["findings"]} == {
            "EXACT001",
            "EXACT002",
            "EXACT003",
        }

    def test_write_baseline_then_rerun_is_clean(self, tmp_path):
        place(tmp_path, "exact_bad.py", "repro/ds/exact_bad.py")
        baseline = tmp_path / "baseline.json"
        out = io.StringIO()
        assert (
            main(
                ["--baseline", str(baseline), "--write-baseline", str(tmp_path)],
                out=out,
            )
            == 0
        )
        out = io.StringIO()
        assert main(["--baseline", str(baseline), str(tmp_path)], out=out) == 0
        assert "3 baselined" in out.getvalue()

    def test_stale_baseline_is_an_error(self, tmp_path):
        target = place(tmp_path, "exact_bad.py", "repro/ds/exact_bad.py")
        baseline = tmp_path / "baseline.json"
        main(["--baseline", str(baseline), "--write-baseline", str(tmp_path)])
        target.write_text('"""Fixed."""\n')
        out = io.StringIO()
        assert main(["--baseline", str(baseline), str(tmp_path)], out=out) == 1
        assert "stale" in out.getvalue()

    def test_list_rules_mentions_every_family(self, tmp_path):
        out = io.StringIO()
        assert main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        for family in ("EXACT", "DETERM", "CONC", "BACKEND"):
            assert family in text
