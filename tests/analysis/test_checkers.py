"""Each checker against its good/bad fixture pair.

Checker applicability is keyed on ``repro/<layer>/`` path fragments, so the
fixtures are copied into a throwaway tree that mimics the real source layout
before the analyzer runs over them.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis.lint import analyze
from repro.analysis.lint.checkers.backend import BackendChecker
from repro.analysis.lint.checkers.conc import ConcChecker
from repro.analysis.lint.checkers.determ import DetermChecker
from repro.analysis.lint.checkers.exact import ExactChecker
from repro.analysis.lint.checkers.obs import ObsChecker

FIXTURES = Path(__file__).parent / "fixtures"


def place(tmp_path: Path, fixture: str, virtual: str) -> Path:
    """Copy a fixture into a virtual repro/... location under tmp_path."""
    target = tmp_path / virtual
    target.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(FIXTURES / fixture, target)
    return target


def rules_of(result):
    return sorted(finding.rule for finding in result.findings)


class TestExactChecker:
    def test_bad_fixture_triggers_every_rule(self, tmp_path):
        place(tmp_path, "exact_bad.py", "repro/ds/exact_bad.py")
        result = analyze([tmp_path], checkers=[ExactChecker()])
        assert rules_of(result) == ["EXACT001", "EXACT002", "EXACT003"]

    def test_good_fixture_is_clean(self, tmp_path):
        place(tmp_path, "exact_good.py", "repro/ds/exact_good.py")
        result = analyze([tmp_path], checkers=[ExactChecker()])
        assert result.findings == []

    def test_algebra_path_is_also_covered(self, tmp_path):
        place(tmp_path, "exact_bad.py", "repro/algebra/exact_bad.py")
        result = analyze([tmp_path], checkers=[ExactChecker()])
        assert "EXACT001" in rules_of(result)

    def test_other_layers_are_exempt(self, tmp_path):
        place(tmp_path, "exact_bad.py", "repro/exec/exact_bad.py")
        result = analyze([tmp_path], checkers=[ExactChecker()])
        assert result.findings == []


class TestDetermChecker:
    def test_bad_fixture_flags_set_iteration(self, tmp_path):
        place(tmp_path, "determ_bad.py", "repro/algebra/determ_bad.py")
        result = analyze([tmp_path], checkers=[DetermChecker()])
        rules = rules_of(result)
        assert rules and set(rules) == {"DETERM001"}
        # self.touched comprehension, `for item in members`, the set
        # literal loop, and list(set(...) | {...}) each flag once.
        assert len(rules) == 4

    def test_sorted_wrapping_silences_the_rule(self, tmp_path):
        place(tmp_path, "determ_good.py", "repro/algebra/determ_good.py")
        result = analyze([tmp_path], checkers=[DetermChecker()])
        assert result.findings == []

    def test_clock_import_flagged_in_query_layer_only(self, tmp_path):
        place(tmp_path, "determ_query_bad.py", "repro/query/determ_query_bad.py")
        place(tmp_path, "determ_query_bad.py", "repro/storage/determ_query_bad.py")
        result = analyze([tmp_path], checkers=[DetermChecker()])
        flagged = [f for f in result.findings if f.rule == "DETERM002"]
        assert len(flagged) == 1
        assert "repro/query/" in flagged[0].path


class TestConcChecker:
    def test_bad_fixture_flags_writes_and_capture(self, tmp_path):
        place(tmp_path, "conc_bad.py", "repro/exec/conc_bad.py")
        result = analyze([tmp_path], checkers=[ConcChecker()])
        rules = rules_of(result)
        # STATS["hits"] += 1, HISTORY.append, the captured connection,
        # and the with-bound handle shipped (by keyword) to the warm
        # pool's long-lived submit_batch.
        assert rules == ["CONC001", "CONC001", "CONC002", "CONC002"]
        captures = [f for f in result.findings if f.rule == "CONC002"]
        assert any("handle" in f.message for f in captures)
        assert any("connection" in f.message for f in captures)

    def test_locked_writes_and_local_handles_are_clean(self, tmp_path):
        place(tmp_path, "conc_good.py", "repro/exec/conc_good.py")
        result = analyze([tmp_path], checkers=[ConcChecker()])
        assert result.findings == []

    def test_sockets_shipped_through_wire_dispatches_flagged(self, tmp_path):
        place(tmp_path, "conc_socket_bad.py", "repro/exec/conc_socket_bad.py")
        result = analyze([tmp_path], checkers=[ConcChecker()])
        rules = rules_of(result)
        # the assigned socket into submit_batch, the lambda capture into
        # map_encoded, and the with-bound socket into submit_batch (by
        # keyword) -- three CONC003s, and nothing misfiled as CONC002
        assert rules == ["CONC003", "CONC003", "CONC003"]
        messages = [f.message for f in result.findings]
        assert any("connection" in message for message in messages)
        assert any("lambda" in message for message in messages)
        assert any("wire" in message for message in messages)

    def test_worker_side_connects_and_thread_submits_are_clean(self, tmp_path):
        place(tmp_path, "conc_socket_good.py", "repro/exec/conc_socket_good.py")
        result = analyze([tmp_path], checkers=[ConcChecker()])
        assert result.findings == []


class TestBackendChecker:
    def test_incomplete_and_forgetful_backends_flagged(self, tmp_path):
        place(tmp_path, "backend_bad.py", "repro/storage/backend_bad.py")
        result = analyze([tmp_path], checkers=[BackendChecker()])
        by_rule = {}
        for finding in result.findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        # IncompleteBackend is missing _delete_relation.
        assert len(by_rule["BACKEND001"]) == 1
        assert "_delete_relation" in by_rule["BACKEND001"][0].message
        # ForgetfulBackend never bumps from _save_relation or _delete_relation.
        assert len(by_rule["BACKEND002"]) == 2

    def test_complete_backend_with_bump_helper_is_clean(self, tmp_path):
        place(tmp_path, "backend_good.py", "repro/storage/backend_good.py")
        result = analyze([tmp_path], checkers=[BackendChecker()])
        assert result.findings == []


class TestObsChecker:
    def test_cross_package_mutations_flagged(self, tmp_path):
        place(tmp_path, "obs_bad.py", "repro/stream/obs_bad.py")
        result = analyze([tmp_path], checkers=[ObsChecker()])
        rules = rules_of(result)
        # The .bump() call, the augmented assignment, the attribute store.
        assert rules == ["OBS001", "OBS001", "OBS001"]

    def test_owner_and_registry_usage_is_clean(self, tmp_path):
        place(tmp_path, "obs_good.py", "repro/stream/obs_good.py")
        result = analyze([tmp_path], checkers=[ObsChecker()])
        assert result.findings == []

    def test_same_package_bump_is_the_owners_business(self, tmp_path):
        # ds/combination.py bumping ds.kernel's STATS is the canonical
        # legal case: same package, absolute import.
        place(tmp_path, "obs_bad.py", "repro/ds/obs_bad.py")
        result = analyze([tmp_path], checkers=[ObsChecker()])
        # Only the exec.executors import stays foreign from repro/ds/.
        assert rules_of(result) == ["OBS001"]
        assert "repro.exec.executors" in result.findings[0].message

    def test_telemetry_layer_itself_is_exempt(self, tmp_path):
        place(tmp_path, "obs_bad.py", "repro/obs/obs_bad.py")
        place(tmp_path, "obs_bad.py", "repro/counters.py")
        result = analyze([tmp_path], checkers=[ObsChecker()])
        assert result.findings == []


class TestIgnorePragma:
    @pytest.fixture()
    def result(self, tmp_path):
        place(tmp_path, "ignore_pragma.py", "repro/ds/ignore_pragma.py")
        return analyze([tmp_path], checkers=[ExactChecker()])

    def test_all_findings_suppressed(self, result):
        assert result.findings == []

    def test_suppressions_counted_not_dropped(self, result):
        assert len(result.ignored) == 3
        assert sorted(f.rule for f in result.ignored) == [
            "EXACT001",
            "EXACT001",
            "EXACT002",
        ]
