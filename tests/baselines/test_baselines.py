"""Tests for the Section 1.3 baseline comparators."""

from fractions import Fraction

import pytest

from repro.errors import IntegrationError, MassFunctionError, TotalConflictError
from repro.ds.frame import OMEGA
from repro.model.evidence import EvidenceSet
from repro.baselines.aggregates import AggregateResolver
from repro.baselines.partial_values import (
    PartialValue,
    combine_partial,
    partial_select,
    to_partial_value,
)
from repro.baselines.probabilistic import (
    ProbabilisticPartialValue,
    combine_probabilistic,
    probabilistic_select,
)
from repro.baselines.pdm import (
    WILDCARD,
    PdmDistribution,
    pdm_combine_missing,
    pdm_from_evidence,
)
from repro.datasets.restaurants import speciality_domain


class TestAggregates:
    def test_average_salary_example(self):
        """Dayal's running example: disagreeing salaries average out."""
        resolver = AggregateResolver("name")
        resolved, refused = resolver.resolve(
            [{"name": "e1", "salary": 100}], [{"name": "e1", "salary": 120}]
        )
        assert resolved[0]["salary"] == 110
        assert refused == []

    def test_min_max_sum(self):
        resolver = AggregateResolver(
            "k", methods={"low": "min", "high": "max", "total": "sum"}
        )
        resolved, _ = resolver.resolve(
            [{"k": 1, "low": 5, "high": 5, "total": 5}],
            [{"k": 1, "low": 3, "high": 9, "total": 7}],
        )
        assert resolved[0] == {"k": 1, "low": 3, "high": 9, "total": 12}

    def test_non_numeric_disagreement_refused(self):
        """The paper's point: aggregates cannot integrate non-numeric
        conflicting values."""
        resolver = AggregateResolver("k")
        resolved, refused = resolver.resolve(
            [{"k": 1, "speciality": "si"}], [{"k": 1, "speciality": "hu"}]
        )
        assert refused == [(1, "speciality")]
        assert resolved[0]["speciality"] == "si"  # left value kept

    def test_agreement_passes_through(self):
        resolver = AggregateResolver("k")
        resolved, refused = resolver.resolve(
            [{"k": 1, "city": "mpls"}], [{"k": 1, "city": "mpls"}]
        )
        assert refused == []
        assert resolved[0]["city"] == "mpls"

    def test_unmatched_rows_kept(self):
        resolver = AggregateResolver("k")
        resolved, _ = resolver.resolve([{"k": 1, "v": 1}], [{"k": 2, "v": 2}])
        assert len(resolved) == 2

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(IntegrationError):
            AggregateResolver("k", default="median")
        with pytest.raises(IntegrationError):
            AggregateResolver("k", methods={"v": "mode"})

    def test_fractional_average(self):
        resolver = AggregateResolver("k")
        resolved, _ = resolver.resolve([{"k": 1, "v": 1}], [{"k": 1, "v": 2}])
        assert resolved[0]["v"] == Fraction(3, 2)


class TestPartialValues:
    def test_combination_is_intersection(self):
        a = PartialValue({"hu", "si", "ca"})
        b = PartialValue({"si", "ca", "am"})
        assert combine_partial(a, b) == PartialValue({"si", "ca"})

    def test_disjoint_is_total_conflict(self):
        with pytest.raises(TotalConflictError):
            combine_partial(PartialValue({"hu"}), PartialValue({"si"}))

    def test_empty_rejected(self):
        with pytest.raises(TotalConflictError):
            PartialValue(set())

    def test_definite(self):
        assert PartialValue({"x"}).is_definite()
        assert PartialValue({"x"}).definite_value() == "x"
        with pytest.raises(ValueError):
            PartialValue({"x", "y"}).definite_value()

    def test_flattening_evidence_loses_mass_structure(self):
        es = EvidenceSet("[si^0.9, hu^0.1]")
        partial = to_partial_value(es)
        # 0.9-vs-0.1 distinction is gone; only the candidate set remains.
        assert partial == PartialValue({"si", "hu"})

    def test_flattening_omega_needs_domain(self):
        es = EvidenceSet("[si^0.5, Ω^0.5]")
        with pytest.raises(TotalConflictError):
            to_partial_value(es)
        domained = EvidenceSet("[si^0.5, Ω^0.5]", speciality_domain())
        assert to_partial_value(domained).candidates == (
            speciality_domain().frame().values
        )

    def test_true_maybe_selection(self):
        rows = [
            ("definitely", PartialValue({"si"})),
            ("maybe", PartialValue({"si", "hu"})),
            ("no", PartialValue({"am"})),
        ]
        true_ids, maybe_ids = partial_select(rows, {"si"})
        assert true_ids == ["definitely"]
        assert maybe_ids == ["maybe"]


class TestProbabilisticPartialValues:
    def test_construction_validates(self):
        with pytest.raises(MassFunctionError):
            ProbabilisticPartialValue({"a": "1/2"})
        with pytest.raises(MassFunctionError):
            ProbabilisticPartialValue({"a": "-1/2", "b": "3/2"})

    def test_from_evidence_splits_sets(self):
        es = EvidenceSet("[d31^0.5, {d35,d36}^0.5]")
        ppv = ProbabilisticPartialValue.from_evidence(es)
        assert ppv.probability("d31") == Fraction(1, 2)
        # Fabricated precision: the undecided half splits evenly.
        assert ppv.probability("d35") == Fraction(1, 4)
        assert ppv.probability("d36") == Fraction(1, 4)

    def test_mixture_retains_inconsistency(self):
        """A value one source excludes survives with half its mass --
        unlike Dempster's renormalization."""
        a = ProbabilisticPartialValue({"si": 1})
        b = ProbabilisticPartialValue({"hu": 1})
        pooled = combine_probabilistic(a, b)
        assert pooled.probability("si") == Fraction(1, 2)
        assert pooled.probability("hu") == Fraction(1, 2)

    def test_probability_in(self):
        ppv = ProbabilisticPartialValue({"a": "1/2", "b": "1/4", "c": "1/4"})
        assert ppv.probability_in({"a", "b"}) == Fraction(3, 4)

    def test_selection_with_confidence(self):
        rows = [
            ("high", ProbabilisticPartialValue({"si": "9/10", "hu": "1/10"})),
            ("low", ProbabilisticPartialValue({"si": "1/10", "hu": "9/10"})),
        ]
        answers = probabilistic_select(rows, {"si"}, confidence="1/2")
        assert answers == [("high", Fraction(9, 10))]


class TestPdm:
    def test_wildcard_missing_probability(self):
        d = PdmDistribution({"ex": "1/2", WILDCARD: "1/2"})
        assert d.missing == Fraction(1, 2)
        assert d.probability("ex") == Fraction(1, 2)

    def test_ingesting_set_evidence_loses_to_wildcard(self):
        """PDM has nowhere to put mass on {hu,si}: it collapses to '*',
        indistinguishable from total ignorance."""
        es = EvidenceSet("[ca^1/2, {hu,si}^1/3, Ω^1/6]")
        d = pdm_from_evidence(es)
        assert d.probability("ca") == Fraction(1, 2)
        assert d.missing == Fraction(1, 3) + Fraction(1, 6)

    def test_combine_realizes_dempster_on_singleton_masses(self):
        """PDM's anticipated COMBINE == Dempster restricted to
        singleton+OMEGA masses (the paper's claim in Section 1.3)."""
        from repro.ds.combination import combine
        from repro.ds.mass import MassFunction

        a = PdmDistribution({"x": "1/2", "y": "1/4", WILDCARD: "1/4"})
        b = PdmDistribution({"x": "1/3", WILDCARD: "2/3"})
        pooled = pdm_combine_missing(a, b)

        ma = MassFunction({"x": "1/2", "y": "1/4", OMEGA: "1/4"})
        mb = MassFunction({"x": "1/3", OMEGA: "2/3"})
        dempster = combine(ma, mb)
        assert pooled.probability("x") == dempster[{"x"}]
        assert pooled.probability("y") == dempster[{"y"}]
        assert pooled.missing == dempster[OMEGA]

    def test_total_conflict(self):
        a = PdmDistribution({"x": 1})
        b = PdmDistribution({"y": 1})
        with pytest.raises(TotalConflictError):
            pdm_combine_missing(a, b)

    def test_wildcard_saves_conflict(self):
        a = PdmDistribution({"x": "1/2", WILDCARD: "1/2"})
        b = PdmDistribution({"y": 1})
        pooled = pdm_combine_missing(a, b)
        assert pooled.probability("y") == 1
