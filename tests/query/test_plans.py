"""Unit tests for the logical plan nodes themselves."""

import pytest

from repro.errors import SchemaError
from repro.storage import Database
from repro.algebra.predicates import IsPredicate
from repro.algebra.thresholds import SN_POSITIVE, sn_at_least
from repro.query.plans import (
    IntersectPlan,
    ProductPlan,
    ProjectPlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)
from repro.datasets.restaurants import table_ra, table_rb, table_rm_a


@pytest.fixture
def db():
    database = Database("t")
    database.add(table_ra())
    database.add(table_rb())
    database.add(table_rm_a())
    return database


@pytest.fixture
def scan_ra():
    return ScanPlan("RA", table_ra().schema)


class TestScan:
    def test_schema_and_label(self, scan_ra):
        assert scan_ra.schema().name == "RA"
        assert scan_ra.label() == "Scan RA"
        assert scan_ra.children() == ()

    def test_execute(self, db, scan_ra):
        assert scan_ra.execute(db).same_tuples(table_ra())


class TestSelectPlan:
    def test_predicate_select(self, db, scan_ra):
        plan = SelectPlan(scan_ra, IsPredicate("speciality", {"si"}))
        result = plan.execute(db)
        assert sorted(t.key()[0] for t in result) == ["garden", "wok"]
        assert plan.schema() == scan_ra.schema()

    def test_threshold_only_select(self, db, scan_ra):
        plan = SelectPlan(scan_ra, None, sn_at_least(1))
        result = plan.execute(db)
        # mehl has sn = 1/2 -> filtered; the five certain tuples remain.
        assert len(result) == 5
        assert result.get("mehl") is None

    def test_label_mentions_parts(self, scan_ra):
        plan = SelectPlan(scan_ra, IsPredicate("rating", {"ex"}), SN_POSITIVE)
        assert "rating is {ex}" in plan.label()
        assert "sn > 0" in plan.label()

    def test_describe_indents_children(self, scan_ra):
        plan = SelectPlan(scan_ra, None)
        lines = plan.describe().splitlines()
        assert lines[0].startswith("Select")
        assert lines[1].startswith("  Scan")


class TestProjectPlan:
    def test_schema_computed_at_build(self, scan_ra):
        plan = ProjectPlan(scan_ra, ("rname", "rating"))
        assert plan.schema().names == ("rname", "rating")

    def test_invalid_projection_fails_at_build(self, scan_ra):
        with pytest.raises(SchemaError):
            ProjectPlan(scan_ra, ("rating",))  # drops the key

    def test_execute(self, db, scan_ra):
        plan = ProjectPlan(scan_ra, ("rname", "rating"))
        assert plan.execute(db).schema.names == ("rname", "rating")


class TestBinaryPlans:
    def test_union_requires_compatibility(self, scan_ra):
        rm = ScanPlan("RM_A", table_rm_a().schema)
        with pytest.raises(SchemaError):
            UnionPlan(scan_ra, rm)
        with pytest.raises(SchemaError):
            IntersectPlan(scan_ra, rm)

    def test_union_execute(self, db, scan_ra):
        rb = ScanPlan("RB", table_rb().schema)
        result = UnionPlan(scan_ra, rb).execute(db)
        assert len(result) == 6

    def test_intersect_execute(self, db, scan_ra):
        rb = ScanPlan("RB", table_rb().schema)
        result = IntersectPlan(scan_ra, rb).execute(db)
        assert len(result) == 5

    def test_labels_show_keys(self, scan_ra):
        rb = ScanPlan("RB", table_rb().schema)
        assert UnionPlan(scan_ra, rb).label() == "Union by (rname)"
        assert IntersectPlan(scan_ra, rb).label() == "Intersect by (rname)"

    def test_product_schema_and_execute(self, db, scan_ra):
        rm = ScanPlan("RM_A", table_rm_a().schema)
        plan = ProductPlan(scan_ra, rm)
        assert "RA_rname" in plan.schema()
        result = plan.execute(db)
        assert len(result) == len(table_ra()) * len(table_rm_a())
        assert plan.label() == "Product"

    def test_children(self, scan_ra):
        rb = ScanPlan("RB", table_rb().schema)
        plan = UnionPlan(scan_ra, rb)
        assert plan.children() == (scan_ra, rb)
