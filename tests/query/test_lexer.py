"""Tests for the query lexer."""

import pytest

from repro.errors import LexError
from repro.query.lexer import tokenize
from repro.query.tokens import (
    KIND_EOF,
    KIND_EVIDENCE,
    KIND_IDENT,
    KIND_KEYWORD,
    KIND_NUMBER,
    KIND_STRING,
    KIND_SYMBOL,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert values("select SELECT SeLeCt") == ["SELECT", "SELECT", "SELECT"]

    def test_identifiers_keep_case(self):
        assert values("RA ra Ra") == ["RA", "ra", "Ra"]

    def test_eof_always_present(self):
        assert kinds("")[-1] == KIND_EOF
        assert kinds("SELECT")[-1] == KIND_EOF

    def test_numbers(self):
        tokens = tokenize("42 0.5 1/3")
        assert [t.kind for t in tokens[:-1]] == [KIND_NUMBER] * 3
        assert [t.value for t in tokens[:-1]] == ["42", "0.5", "1/3"]

    def test_strings_both_quotes(self):
        tokens = tokenize("\"double\" 'single'")
        assert [t.value for t in tokens[:-1]] == ["double", "single"]
        assert all(t.kind == KIND_STRING for t in tokens[:-1])

    def test_string_escapes(self):
        (token, _) = tokenize(r'"a\"b"')
        assert token.value == 'a"b'

    def test_symbols(self):
        assert values("( ) { } , ; * = < > <= >= .") == [
            "(", ")", "{", "}", ",", ";", "*", "=", "<", ">", "<=", ">=", ".",
        ]

    def test_multichar_symbols_win(self):
        assert values("<=") == ["<="]
        assert values("< =") == ["<", "="]

    def test_comments_skipped(self):
        assert values("SELECT -- a comment\n rname") == ["SELECT", "rname"]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT rname")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestEvidenceLiterals:
    def test_captured_raw(self):
        tokens = tokenize("WHERE rating = [ex^0.5, gd^0.5]")
        evidence = [t for t in tokens if t.kind == KIND_EVIDENCE]
        assert len(evidence) == 1
        assert evidence[0].value == "[ex^0.5, gd^0.5]"

    def test_nested_brackets(self):
        tokens = tokenize("[a^1] [b^0.5, c^0.5]")
        assert [t.value for t in tokens[:-1]] == ["[a^1]", "[b^0.5, c^0.5]"]

    def test_unterminated_rejected(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("[a^1")


class TestErrors:
    def test_illegal_character(self):
        with pytest.raises(LexError) as exc_info:
            tokenize("SELECT @")
        assert exc_info.value.position == 7

    def test_whole_statement(self):
        text = "SELECT rname, phone FROM RA WHERE speciality IS {si} WITH SN > 0.5;"
        token_values = values(text)
        assert token_values[0] == "SELECT"
        assert "{" in token_values and "}" in token_values
        assert token_values[-1] == ";"
