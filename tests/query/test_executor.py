"""End-to-end query execution tests."""

from fractions import Fraction

import pytest

from repro.storage import Database
from repro.query import execute, explain
from repro.algebra import And, IsPredicate, select, union
from repro.datasets.restaurants import (
    expected_table2,
    expected_table4,
    table_ra,
    table_rb,
    table_rm_a,
)


@pytest.fixture
def db():
    database = Database("tourist_bureau")
    database.add(table_ra())
    database.add(table_rb())
    database.add(table_rm_a())
    return database


class TestPaperQueriesViaSql:
    def test_table2_as_sql(self, db):
        result = execute("SELECT * FROM RA WHERE speciality IS {si}", db)
        assert result.same_tuples(expected_table2())

    def test_table3_as_sql(self, db):
        result = execute(
            "SELECT * FROM RA WHERE speciality IS {mu} AND rating IS {ex}", db
        )
        assert sorted(t.key()[0] for t in result) == ["ashiana", "mehl"]
        assert result.get("mehl").membership.as_tuple() == (
            Fraction(8, 25),
            Fraction(8, 25),
        )

    def test_table4_as_sql(self, db):
        result = execute("RA UNION RB BY (rname)", db)
        assert result.same_tuples(expected_table4())

    def test_table5_as_sql(self, db):
        result = execute("SELECT rname, phone, speciality, rating FROM RA", db)
        from repro.datasets.restaurants import expected_table5

        assert result.same_tuples(expected_table5())


class TestGeneralExecution:
    def test_threshold_filters(self, db):
        loose = execute("SELECT * FROM RA WHERE rating IS {ex}", db)
        tight = execute("SELECT * FROM RA WHERE rating IS {ex} WITH SN = 1", db)
        assert len(tight) < len(loose)
        assert sorted(t.key()[0] for t in tight) == ["ashiana", "country"]

    def test_theta_query(self, db):
        result = execute("SELECT * FROM RA WHERE bldg_no >= 600", db)
        assert sorted(t.key()[0] for t in result) == ["garden", "mehl", "wok"]

    def test_string_literal(self, db):
        result = execute("SELECT * FROM RA WHERE rname = 'wok'", db)
        assert [t.key()[0] for t in result] == ["wok"]

    def test_evidence_literal_comparison(self, db):
        result = execute("SELECT * FROM RA WHERE bldg_no < [{600}^1]", db)
        assert sorted(t.key()[0] for t in result) == ["ashiana", "country", "olive"]

    def test_join_execution(self, db):
        result = execute(
            "SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.rname", db
        )
        assert len(result) == len(table_rm_a())

    def test_query_on_union_subquery(self, db):
        result = execute(
            "SELECT * FROM (RA UNION RB) WHERE rating IS {gd} WITH SN > 0.5",
            db,
        )
        # Integrated garden has gd^6/7; wok gd^1; olive gd^0.8.
        assert sorted(t.key()[0] for t in result) == ["garden", "olive", "wok"]

    def test_or_extension(self, db):
        result = execute(
            "SELECT * FROM RA WHERE speciality IS {it} OR speciality IS {am}",
            db,
        )
        assert sorted(t.key()[0] for t in result) == ["country", "olive"]

    def test_not_extension(self, db):
        result = execute(
            "SELECT * FROM RA WHERE NOT speciality IS {si} WITH SN = 1", db
        )
        keys = sorted(t.key()[0] for t in result)
        assert "wok" not in keys
        assert "country" in keys

    def test_matches_direct_algebra(self, db):
        via_sql = execute(
            "SELECT * FROM RA WHERE speciality IS {mu} AND rating IS {ex}", db
        )
        direct = select(
            table_ra(),
            And(IsPredicate("speciality", {"mu"}), IsPredicate("rating", {"ex"})),
        )
        assert via_sql.same_tuples(direct)

    def test_database_query_helper(self, db):
        result = db.query("SELECT * FROM RA WHERE rname = 'olive'")
        assert len(result) == 1


class TestExplain:
    def test_explain_renders_tree(self, db):
        text = explain(
            "SELECT rname, rating FROM RA WHERE rating IS {ex} WITH SN > 0.5",
            db,
        )
        assert "Scan RA" in text
        assert "Select" in text
        assert "Project" in text

    def test_database_explain_helper(self, db):
        assert "Union" in db.explain("RA UNION RB")
