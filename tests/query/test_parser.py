"""Tests for the query parser (AST construction)."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.query import ast
from repro.query.parser import parse


class TestSelect:
    def test_minimal(self):
        statement = parse("SELECT rname FROM RA")
        assert statement.projection == ("rname",)
        assert statement.source == ast.RelationSource("RA")
        assert statement.condition is None
        assert statement.thresholds == ()

    def test_star_projection(self):
        assert parse("SELECT * FROM RA").projection is None

    def test_multiple_columns(self):
        statement = parse("SELECT rname, phone, rating FROM RA")
        assert statement.projection == ("rname", "phone", "rating")

    def test_is_condition(self):
        statement = parse("SELECT * FROM RA WHERE speciality IS {si}")
        condition = statement.condition
        assert isinstance(condition, ast.IsCondition)
        assert condition.attribute == ast.NameRef("speciality")
        assert condition.values == ("si",)

    def test_is_condition_multiple_values(self):
        statement = parse("SELECT * FROM RA WHERE speciality IS {hu, si}")
        assert statement.condition.values == ("hu", "si")

    def test_compare_condition(self):
        statement = parse("SELECT * FROM RA WHERE bldg_no >= 600")
        condition = statement.condition
        assert isinstance(condition, ast.CompareCondition)
        assert condition.op == ">="
        assert condition.right == ast.ValueLiteral(600)

    def test_equality_alias(self):
        statement = parse("SELECT * FROM RA WHERE rname == 'wok'")
        assert statement.condition.op == "="

    def test_and_or_not_precedence(self):
        statement = parse(
            "SELECT * FROM R WHERE a IS {x} AND b IS {y} OR NOT c IS {z}"
        )
        condition = statement.condition
        assert isinstance(condition, ast.OrCondition)
        assert isinstance(condition.parts[0], ast.AndCondition)
        assert isinstance(condition.parts[1], ast.NotCondition)

    def test_parentheses_override(self):
        statement = parse("SELECT * FROM R WHERE a IS {x} AND (b IS {y} OR c IS {z})")
        condition = statement.condition
        assert isinstance(condition, ast.AndCondition)
        assert isinstance(condition.parts[1], ast.OrCondition)

    def test_dotted_names(self):
        statement = parse("SELECT * FROM RA JOIN RM ON RA.rname = RM.rname")
        join = statement.source
        assert isinstance(join, ast.JoinSource)
        assert join.condition.left == ast.NameRef("rname", "RA")

    def test_evidence_literal_operand(self):
        statement = parse("SELECT * FROM R WHERE rating >= [gd^1]")
        assert statement.condition.right == ast.EvidenceLiteral("[gd^1]")

    def test_thresholds(self):
        statement = parse("SELECT * FROM R WITH SN > 0.5 AND SP >= 0.9")
        assert statement.thresholds == (
            ast.ThresholdTerm("sn", ">", Fraction(1, 2)),
            ast.ThresholdTerm("sp", ">=", Fraction(9, 10)),
        )

    def test_rational_threshold(self):
        statement = parse("SELECT * FROM R WITH SN >= 1/3")
        assert statement.thresholds[0].bound == Fraction(1, 3)

    def test_trailing_semicolon(self):
        assert parse("SELECT * FROM R;").projection is None


class TestUnionAndSources:
    def test_union(self):
        statement = parse("RA UNION RB")
        assert isinstance(statement, ast.UnionStatement)
        assert statement.left == ast.RelationSource("RA")
        assert statement.keys is None

    def test_union_by(self):
        statement = parse("RA UNION RB BY (rname)")
        assert statement.keys == ("rname",)

    def test_union_by_composite(self):
        statement = parse("RM_A UNION RM_B BY (rname, mname)")
        assert statement.keys == ("rname", "mname")

    def test_union_of_subqueries(self):
        statement = parse("(SELECT * FROM RA) UNION (SELECT * FROM RB)")
        assert isinstance(statement.left, ast.SubquerySource)

    def test_bare_relation_is_select_star(self):
        statement = parse("RA")
        assert isinstance(statement, ast.SelectStatement)
        assert statement.projection is None

    def test_join_chain(self):
        statement = parse("SELECT * FROM A JOIN B ON A.k = B.k JOIN C ON B.k = C.k")
        outer = statement.source
        assert isinstance(outer, ast.JoinSource)
        assert isinstance(outer.left, ast.JoinSource)

    def test_subquery_source(self):
        statement = parse("SELECT rname FROM (SELECT * FROM RA WHERE a IS {x})")
        assert isinstance(statement.source, ast.SubquerySource)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT FROM RA",
            "SELECT * RA",
            "SELECT * FROM",
            "SELECT * FROM RA WHERE",
            "SELECT * FROM RA WHERE speciality IS",
            "SELECT * FROM RA WHERE speciality IS {}",
            "SELECT * FROM RA WITH 0.5 > SN",
            "SELECT * FROM RA WITH SN > high",
            "SELECT * FROM RA trailing",
            "RA UNION",
            "SELECT * FROM RA JOIN RB",
            "SELECT * FROM RA WHERE 5 IS {x}",
        ],
    )
    def test_malformed_statements(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_select_union_needs_parentheses(self):
        with pytest.raises(ParseError, match="parenthes"):
            parse("SELECT * FROM RA UNION RB")
