"""Tests for plan binding and the optimizer's rewrite rules."""

import pytest

from repro.errors import PlanError
from repro.storage import Database
from repro.query.parser import parse
from repro.query.planner import build_plan, optimize
from repro.query.plans import (
    ProductPlan,
    ProjectPlan,
    ScanPlan,
    SelectPlan,
    UnionPlan,
)
from repro.datasets.restaurants import table_ra, table_rb, table_rm_a


@pytest.fixture
def db():
    database = Database("test")
    database.add(table_ra())
    database.add(table_rb())
    database.add(table_rm_a())
    return database


def plan_of(db, text):
    return build_plan(parse(text), db)


class TestBinding:
    def test_scan(self, db):
        plan = plan_of(db, "SELECT * FROM RA")
        assert isinstance(plan, ScanPlan)
        assert plan.schema().name == "RA"

    def test_unknown_relation(self, db):
        with pytest.raises(Exception, match="no relation"):
            plan_of(db, "SELECT * FROM GHOST")

    def test_unknown_attribute(self, db):
        with pytest.raises(PlanError, match="unknown attribute"):
            plan_of(db, "SELECT * FROM RA WHERE ghost IS {x}")

    def test_projection_must_keep_keys(self, db):
        with pytest.raises(PlanError, match="retain key"):
            plan_of(db, "SELECT phone FROM RA")

    def test_dotted_name_resolution(self, db):
        plan = plan_of(
            db, "SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.rname"
        )
        assert isinstance(plan, SelectPlan)
        assert isinstance(plan.child, ProductPlan)

    def test_dotted_name_falls_back_to_plain(self, db):
        # mname is unique in the product; RM_A.mname resolves to mname.
        plan = plan_of(db, "SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.mname")
        assert plan is not None

    def test_unresolvable_dotted_name(self, db):
        with pytest.raises(PlanError, match="cannot resolve"):
            plan_of(db, "SELECT * FROM RA JOIN RM_A ON RA.ghost = RM_A.rname")

    def test_union_keys_validated(self, db):
        with pytest.raises(PlanError, match="does not match"):
            plan_of(db, "RA UNION RB BY (phone)")

    def test_union_compatible_enforced(self, db):
        with pytest.raises(Exception):
            plan_of(db, "RA UNION RM_A")

    def test_threshold_binding(self, db):
        plan = plan_of(db, "SELECT * FROM RA WITH SN >= 0.5 AND SP < 1")
        assert isinstance(plan, SelectPlan)
        assert plan.predicate is None
        assert "sn >= 1/2" in plan.threshold.description


class TestOptimizerRules:
    def test_pushdown_through_product(self, db):
        text = (
            "SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.rname "
            "WHERE speciality IS {si}"
        )
        optimized = optimize(plan_of(db, text))
        # The speciality conjunct must sit below the product, on RA's side.
        description = optimized.describe()
        product_line = description.splitlines()
        product_index = next(
            i for i, line in enumerate(product_line) if "Product" in line
        )
        below = "\n".join(product_line[product_index:])
        assert "speciality is" in below

    def test_join_condition_not_pushed(self, db):
        text = "SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.rname"
        optimized = optimize(plan_of(db, text))
        # The cross-side equality stays above the product.
        assert isinstance(optimized, SelectPlan)
        assert isinstance(optimized.child, ProductPlan)

    def test_adjacent_selects_fused(self, db):
        inner = plan_of(db, "SELECT * FROM RA WHERE speciality IS {si}")
        outer = SelectPlan(
            inner,
            plan_of(db, "SELECT * FROM RA WHERE rating IS {ex}").predicate,
        )
        optimized = optimize(outer)
        assert isinstance(optimized, SelectPlan)
        assert isinstance(optimized.child, ScanPlan)

    def test_adjacent_projects_fused(self, db):
        inner = ProjectPlan(
            plan_of(db, "SELECT * FROM RA"), ("rname", "phone", "rating")
        )
        outer = ProjectPlan(inner, ("rname", "rating"))
        optimized = optimize(outer)
        assert isinstance(optimized, ProjectPlan)
        assert isinstance(optimized.child, ScanPlan)
        assert optimized.names == ("rname", "rating")

    def test_projection_pushed_below_select(self, db):
        plan = plan_of(
            db, "SELECT rname, rating FROM RA WHERE rating IS {ex}"
        )
        optimized = optimize(plan)
        assert isinstance(optimized, SelectPlan)
        assert isinstance(optimized.child, ProjectPlan)

    def test_projection_not_pushed_when_predicate_needs_more(self, db):
        plan = plan_of(
            db, "SELECT rname, rating FROM RA WHERE speciality IS {si}"
        )
        optimized = optimize(plan)
        # speciality is not projected, so the project stays on top.
        assert isinstance(optimized, ProjectPlan)

    def test_no_pushdown_through_union(self, db):
        plan = plan_of(
            db, "SELECT * FROM (RA UNION RB) WHERE speciality IS {si}"
        )
        optimized = optimize(plan)
        assert isinstance(optimized, SelectPlan)
        assert isinstance(optimized.child, UnionPlan)


class TestOptimizerSemantics:
    """Optimized plans must return exactly the unoptimized results."""

    QUERIES = [
        "SELECT * FROM RA WHERE speciality IS {si}",
        "SELECT rname, rating FROM RA WHERE rating IS {ex} WITH SN >= 0.5",
        "SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.rname "
        "WHERE speciality IS {si}",
        "SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.rname "
        "WHERE speciality IS {si} AND mname IS {chen}",
        "RA UNION RB BY (rname)",
        "SELECT * FROM (RA UNION RB) WHERE rating IS {gd} WITH SN > 0.5",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_rewrites_preserve_results(self, db, text):
        raw = build_plan(parse(text), db)
        optimized = optimize(build_plan(parse(text), db))
        assert raw.execute(db).same_tuples(optimized.execute(db))

    def test_union_pushdown_would_be_wrong(self, db):
        """Demonstrate that pushing selection below union changes results:
        this is why the optimizer never does it."""
        from repro.algebra import IsPredicate, select, union

        ra, rb = table_ra(), table_rb()
        predicate = IsPredicate("rating", {"ex"})
        correct = select(union(ra, rb), predicate)
        pushed = union(
            select(ra, predicate), select(rb, predicate), name="RA_union_RB"
        )
        assert not correct.same_tuples(pushed)
