"""The Session engine: caching, fingerprints, invalidation, batching."""

import pytest

from repro.errors import CatalogError, PlanError
from repro.algebra import attr
from repro.session import Session
from repro.storage import Database
from repro.datasets.restaurants import table_ra, table_rb, table_rm_a


SQL = "SELECT rname FROM RA WHERE rating IS {ex}"


def fluent(db):
    return db.rel("RA").select(attr("rating").is_({"ex"})).project("rname")


@pytest.fixture
def db():
    database = Database("tourist_bureau")
    database.add(table_ra())
    database.add(table_rb())
    return database


@pytest.fixture
def session(db):
    return db.session()


class TestFingerprints:
    def test_stable_across_calls(self, session):
        assert session.fingerprint(SQL) == session.fingerprint(SQL)

    def test_sql_and_fluent_agree(self, db, session):
        assert fluent(db).fingerprint() == session.fingerprint(SQL)

    def test_stable_across_sessions(self, db):
        other = Session(db)
        assert other.fingerprint(SQL) == db.session().fingerprint(SQL)

    def test_different_queries_differ(self, session):
        assert session.fingerprint(SQL) != session.fingerprint(
            "SELECT rname FROM RA WHERE rating IS {gd}"
        )

    def test_accepts_raw_plans(self, db, session):
        plan = session.plan(SQL)
        assert session.fingerprint(plan) == session.fingerprint(SQL)

    def test_rejects_junk(self, session):
        with pytest.raises(PlanError):
            session.fingerprint(42)


class TestResultCache:
    def test_repeated_collect_hits_cache(self, db, session):
        expr = fluent(db)
        first = expr.collect()
        second = expr.collect()
        assert first is second
        assert session.stats().result_cache_hits == 1
        assert session.stats().plan_cache_hits >= 1

    def test_sql_and_fluent_share_results(self, db, session):
        via_sql = session.execute(SQL)
        via_expr = fluent(db).collect()
        assert via_expr is via_sql
        assert session.stats().result_cache_hits == 1

    def test_equivalent_expressions_share_plans(self, db, session):
        fluent(db).collect()
        fluent(db).collect()  # a distinct RelExpr with the same key
        assert session.stats().result_cache_hits == 1

    def test_eviction_keeps_cache_bounded(self, db):
        tight = Session(db, max_cache_entries=2)
        for condition in ("rating IS {ex}", "rating IS {gd}", "speciality IS {si}"):
            tight.execute(f"SELECT rname FROM RA WHERE {condition}")
        assert tight.cache_info()["results"] <= 2
        assert tight.cache_info()["plans"] <= 2

    def test_clear_cache(self, db, session):
        session.execute(SQL)
        session.clear_cache()
        assert session.cache_info() == {"plans": 0, "results": 0}
        session.execute(SQL)
        assert session.stats().result_cache_hits == 0


class TestInvalidation:
    def test_replace_invalidates(self, db, session):
        expr = fluent(db)
        before = expr.collect()
        db.add(table_ra(), replace=True)
        after = expr.collect()
        assert after is not before
        assert after.same_tuples(before)
        assert session.stats().invalidations == 1

    def test_drop_invalidates(self, db, session):
        session.execute(SQL)
        db.drop("RA")
        with pytest.raises(CatalogError):
            session.execute(SQL)
        assert session.stats().invalidations == 1
        assert session.stats().result_cache_hits == 0

    def test_unrelated_drop_preserves_cache(self, db, session):
        """Targeted invalidation: the query only reads RA, so dropping
        RB must not evict its cached plan or result."""
        session.execute(SQL)
        db.drop("RB")
        session.execute(SQL)
        assert session.stats().invalidations == 0
        assert session.stats().result_cache_hits == 1

    def test_unrelated_replace_preserves_cache(self, db, session):
        expr = fluent(db)
        before = expr.collect()
        db.add(table_rb(), replace=True)
        after = expr.collect()
        assert after is before
        assert session.stats().invalidations == 0

    def test_targeted_eviction_counts_entries(self, db, session):
        session.execute(SQL)
        db.add(table_ra(), replace=True)
        session.execute(SQL)
        assert session.stats().invalidations == 1
        assert session.stats().entries_invalidated > 0

    def test_pure_add_preserves_cache(self, db, session):
        session.execute(SQL)
        db.add(table_rm_a())  # a brand-new name cannot change any result
        session.execute(SQL)
        assert session.stats().invalidations == 0
        assert session.stats().result_cache_hits == 1

    def test_version_counts_catalog_changes(self, db):
        version = db.version
        db.add(table_ra(), replace=True)
        db.drop("RB")
        assert db.version == version + 2
        db.add(table_rm_a())
        assert db.version == version + 2  # pure add: no bump


class TestCollectAll:
    def test_shares_common_subplans(self, db, session):
        union = db.rel("RA").union(db.rel("RB"))
        expressions = [
            union.select(attr("rating").is_({value})) for value in ("ex", "gd")
        ]
        results = session.collect_all(expressions)
        assert len(results) == 2
        # The union subtree (plus its two scans) ran once, then was reused.
        assert session.stats().subplan_cache_hits >= 1

    def test_mixes_strings_and_expressions(self, db, session):
        results = session.collect_all([SQL, fluent(db)])
        assert results[0] is results[1]

    def test_results_in_input_order(self, db, session):
        ex = db.rel("RA").select(attr("rating").is_({"ex"}))
        gd = db.rel("RA").select(attr("rating").is_({"gd"}))
        first, second = session.collect_all([ex, gd])
        assert first.same_tuples(ex.collect())
        assert second.same_tuples(gd.collect())


class TestExplain:
    def test_explain_string_and_expression_agree(self, db, session):
        assert session.explain(SQL) == fluent(db).explain()

    def test_database_explain_delegates(self, db):
        assert "Scan RA" in db.explain(SQL)


class TestCatalogHygiene:
    def test_add_rejects_non_identifier_names(self, db):
        # A space and a leading digit: addressable neither from the
        # query language nor from db.rel().
        with pytest.raises(CatalogError, match="not a valid identifier"):
            db.add(table_ra().with_name("bad name"))
        with pytest.raises(CatalogError, match="not a valid identifier"):
            db.add(table_ra().with_name("1RA"))

    def test_get_suggests_near_miss(self, db):
        with pytest.raises(CatalogError, match="did you mean 'RA'"):
            db.get("RAA")

    def test_drop_suggests_near_miss(self, db):
        with pytest.raises(CatalogError, match="did you mean 'RB'"):
            db.drop("RBB")

    def test_no_hint_for_distant_names(self, db):
        with pytest.raises(CatalogError) as excinfo:
            db.get("completely_unrelated")
        assert "did you mean" not in str(excinfo.value)


class TestSubscriptions:
    def test_eager_subscribe_collects_immediately(self, db, session):
        subscription = session.subscribe(SQL)
        assert subscription.result is not None
        assert subscription.refreshes == 1

    def test_refresh_on_dependent_replace(self, db, session):
        seen = []
        session.subscribe(SQL, callback=lambda result: seen.append(result))
        db.add(table_ra(), replace=True)
        assert len(seen) == 2

    def test_no_refresh_on_unrelated_change(self, db, session):
        subscription = session.subscribe(SQL)
        db.add(table_rb(), replace=True)
        db.add(table_rm_a())
        assert subscription.refreshes == 1

    def test_fluent_expression_subscription(self, db, session):
        subscription = session.subscribe(fluent(db))
        db.add(table_ra(), replace=True)
        assert subscription.refreshes == 2

    def test_cancel_stops_refreshes(self, db, session):
        subscription = session.subscribe(SQL)
        subscription.cancel()
        db.add(table_ra(), replace=True)
        assert subscription.refreshes == 1
        assert not subscription.active

    def test_drop_of_dependency_records_error(self, db, session):
        subscription = session.subscribe(SQL)
        before = subscription.result
        db.drop("RA")  # must not blow up in the drop() call stack
        assert subscription.error is not None
        assert subscription.result is before

    def test_stats_count_refreshes(self, db, session):
        session.subscribe(SQL)
        db.add(table_ra(), replace=True)
        assert session.stats().subscription_refreshes == 2

    def test_subscription_recovers_after_drop_and_readd(self, db, session):
        subscription = session.subscribe(SQL)
        db.drop("RA")
        assert subscription.error is not None
        db.add(table_ra())  # brand-new name again: must retry and heal
        assert subscription.error is None
        assert subscription.refreshes == 2
        assert subscription.result.same_tuples(session.execute(SQL))

    def test_non_eager_subscription_waits_for_its_dependency(self, db, session):
        subscription = session.subscribe(SQL, eager=False)
        assert subscription.result is None
        db.add(table_rm_a())           # unrelated add: stays uncollected
        db.add(table_rb(), replace=True)  # unrelated replace: still waiting
        assert subscription.result is None
        db.add(table_ra(), replace=True)  # the dependency: now collects
        assert subscription.result is not None
        assert subscription.refreshes == 1

    def test_batched_bulk_load_refreshes_each_subscription_once(self, db, session):
        """Regression: a bulk load must fire one batched notification,
        not one per relation -- a subscription over RA used to refresh
        once per mutated relation in the batch."""
        subscription = session.subscribe(SQL)
        assert subscription.refreshes == 1  # the eager initial collect
        with db.batch():
            db.add(table_ra(), replace=True)
            db.add(table_rb(), replace=True)
            db.add(table_rm_a())
        assert subscription.refreshes == 2
        assert session.stats().subscription_refreshes == 2

    def test_add_all_is_one_notification(self, db):
        events = []
        db.add_listener(events.append)
        db.add_all([table_ra(), table_rb()], replace=True)
        assert events == [("RA", "RB")]

    def test_listener_receives_name_tuples(self, db):
        events = []
        db.add_listener(events.append)
        db.add(table_rm_a())
        db.drop("RM_A")
        assert events == [("RM_A",), ("RM_A",)]

    def test_non_eager_subscription_sees_first_publish_of_its_relation(self):
        """A standing query registered before its relation's first
        publish (a StreamEngine pattern) must collect at that publish,
        even though brand-new names never appear in changed_names_since."""
        from repro.stream import StreamEngine

        db = Database("live")
        db.add(table_ra())
        session = db.session()
        engine = StreamEngine(table_ra().schema, name="R_LIVE", database=db)
        subscription = session.subscribe(
            "SELECT rname FROM R_LIVE", eager=False
        )
        assert subscription.result is None
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        engine.flush()
        assert subscription.error is None
        assert subscription.result is not None
        assert len(subscription.result) == len(table_ra())
