"""The adaptive cost model: estimator monotonicity and routing sanity.

The model only ever makes *executor* choices (the equivalence suite
proves semantics are untouched), so what these tests pin down is the
model's own contract: estimates never decrease when the workload grows
(more sources, bigger focal sets, more entities, less kernel-path
share), decisions respect the worker/entity caps, and the hint /
decision handoff plumbing is thread-local and balanced.
"""

from repro.exec import cost
from repro.exec.executors import (
    AdaptiveExecutor,
    configure,
    executor_scope,
    get_executor,
    partition_count,
)


class TestEstimatorMonotonicity:
    def test_more_sources_never_lowers_entity_cost(self):
        costs = [
            cost.entity_cost(sources, focal=4.0, kernel_fraction=1.0)
            for sources in range(1, 12)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_bigger_focal_sets_never_lower_entity_cost(self):
        costs = [
            cost.entity_cost(3.0, focal=focal, kernel_fraction=0.5)
            for focal in (1.0, 2.0, 4.0, 8.0, 16.0, 64.0)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_fallback_path_is_never_cheaper_than_kernel(self):
        for focal in (1.0, 4.0, 16.0):
            kernel = cost.combination_cost(focal, kernel_fraction=1.0)
            mixed = cost.combination_cost(focal, kernel_fraction=0.5)
            fallback = cost.combination_cost(focal, kernel_fraction=0.0)
            assert kernel <= mixed <= fallback
            assert kernel < fallback

    def test_more_entities_never_lower_the_total(self):
        totals = [
            cost.estimate(cost.WorkloadProfile(entities=n))
            for n in (0, 1, 10, 100, 1000)
        ]
        assert totals == sorted(totals)
        assert totals[0] == 0.0

    def test_degenerate_inputs_clamp(self):
        assert cost.entity_cost(0.0, 4.0, 1.0) == cost.ENTITY_BASE_COST
        assert cost.combination_cost(0.0, 1.0) == cost.combination_cost(
            1.0, 1.0
        )
        # Out-of-range kernel fractions clamp to [0, 1].
        assert cost.combination_cost(4.0, 7.0) == cost.combination_cost(
            4.0, 1.0
        )
        assert cost.combination_cost(4.0, -3.0) == cost.combination_cost(
            4.0, 0.0
        )


class TestDecide:
    def test_tiny_workload_stays_serial(self):
        decision = cost.decide(cost.WorkloadProfile(entities=4), workers=4)
        assert decision.kind == "serial"
        assert decision.partitions == 1

    def test_single_worker_stays_serial(self):
        profile = cost.WorkloadProfile(entities=100_000, sources=4.0)
        assert cost.decide(profile, workers=1).kind == "serial"

    def test_huge_workload_goes_parallel(self):
        profile = cost.WorkloadProfile(
            entities=200_000, sources=5.0, focal=8.0, kernel_fraction=0.0
        )
        decision = cost.decide(profile, workers=4)
        assert decision.kind in ("thread", "process")
        assert decision.partitions >= 2

    def test_partitions_capped_by_workers_and_entities(self):
        for entities in (2, 3, 17, 1000):
            for workers in (2, 3, 8):
                profile = cost.WorkloadProfile(
                    entities=entities, sources=6.0, focal=16.0
                )
                decision = cost.decide(profile, workers)
                assert 1 <= decision.partitions <= min(workers, entities)

    def test_describe_is_informative(self):
        profile = cost.WorkloadProfile(entities=12)
        assert "12 entities" in profile.describe()
        decision = cost.decide(profile, workers=4)
        assert decision.kind in decision.describe()


class TestWorkloadHints:
    def test_hint_scopes_nest_and_restore(self):
        baseline = cost.profile_for(10)
        with cost.workload(sources=5.0, focal=9.0):
            outer = cost.profile_for(10)
            assert outer.sources == 5.0
            assert outer.focal == 9.0
            with cost.workload(focal=2.0):
                inner = cost.profile_for(10)
                # None fields inherit from the enclosing hint.
                assert inner.sources == 5.0
                assert inner.focal == 2.0
            assert cost.profile_for(10).focal == 9.0
        restored = cost.profile_for(10)
        assert restored.sources == baseline.sources
        assert restored.focal == baseline.focal

    def test_size_wins_over_hinted_entities(self):
        with cost.workload(entities=999):
            assert cost.profile_for(3).entities == 3

    def test_remember_consume_roundtrip(self):
        decision = cost.Decision("thread", 3, 123.0, "test")
        cost.remember(decision)
        assert cost.consume() is decision
        assert cost.consume() is None


class TestAutoConfiguration:
    def teardown_method(self):
        configure(executor="serial", workers=1, partitions=None)

    def test_auto_is_a_valid_executor_kind(self):
        with executor_scope(executor="auto", workers=4):
            executor = get_executor()
            assert isinstance(executor, AdaptiveExecutor)
            assert executor.kind == "auto"

    def test_partition_count_follows_the_decision(self):
        with executor_scope(executor="auto", workers=4):
            # A tiny batch prices serial: one partition.
            assert partition_count(3) == 1
            # A heavy batch prices parallel: more than one, never more
            # than workers or entities.
            with cost.workload(
                sources=6.0, focal=16.0, kernel_fraction=0.0
            ):
                n = partition_count(50_000)
                assert 2 <= n <= 4

    def test_explicit_partitions_still_pin_the_count(self):
        with executor_scope(executor="auto", workers=4, partitions=3):
            assert partition_count(50_000) == 3

    def test_decision_counters_accumulate(self):
        from repro.obs import registry

        counter = registry().counter("exec.auto.serial_decisions")
        before = counter.value
        with executor_scope(executor="auto", workers=4):
            partition_count(2)
        assert counter.value > before

    def test_adaptive_map_matches_serial(self):
        items = list(range(23))
        with executor_scope(executor="auto", workers=3):
            result = get_executor().map(lambda x: x * x, items)
        assert result == [x * x for x in items]


def test_observed_kernel_fraction_defaults_high():
    # Whatever the process history, the fraction is a probability.
    fraction = cost.observed_kernel_fraction()
    assert 0.0 <= fraction <= 1.0
