"""Unit tests for the execution layer: executors, config, partitioning."""

import os
import subprocess
import sys

import pytest

from repro.errors import ExecutionError, RelationError
from repro.exec import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    configure,
    current_config,
    describe_physical,
    exec_stats,
    executor_scope,
    get_executor,
    partition_count,
    partition_index,
)
from repro.exec.executors import _inside_task
from repro.exec.rewrite import default_pipeline
from repro.datasets.restaurants import table_ra
from repro.model.relation import ExtendedRelation


class TestConfiguration:
    def test_default_is_serial_with_one_partition(self):
        with executor_scope(executor="serial", workers=1, partitions=None):
            config = current_config()
            assert config.kind == "serial"
            assert config.effective_partitions() == 1
            assert isinstance(get_executor(), SerialExecutor)

    def test_configure_switches_executor_kinds(self):
        with executor_scope():
            assert configure(executor="thread", workers=3).kind == "thread"
            assert isinstance(get_executor(), ThreadExecutor)
            assert configure(executor="process", workers=2).kind == "process"
            assert isinstance(get_executor(), ProcessExecutor)

    def test_partitions_default_to_workers(self):
        with executor_scope(executor="thread", workers=5):
            assert current_config().effective_partitions() == 5
            assert partition_count(100) == 5
            # ... but never more partitions than entities.
            assert partition_count(3) == 3
            assert partition_count(1) == 1

    def test_explicit_partitions_override_workers(self):
        with executor_scope(executor="thread", workers=2, partitions=7):
            assert partition_count(100) == 7

    def test_serial_with_explicit_partitions_still_partitions(self):
        with executor_scope(executor="serial", partitions=4):
            assert partition_count(100) == 4

    def test_bad_values_raise(self):
        with pytest.raises(ExecutionError):
            configure(executor="gpu")
        with pytest.raises(ExecutionError):
            configure(workers=0)
        with pytest.raises(ExecutionError):
            configure(partitions=0)

    def test_describe_mentions_kind_workers_partitions(self):
        with executor_scope(executor="thread", workers=4) as config:
            text = config.describe()
            assert "thread" in text and "4 worker(s)" in text
            assert "4 partition(s)" in text

    def test_env_variables_choose_the_executor(self):
        code = (
            "from repro.exec import current_config;"
            "c = current_config();"
            "print(c.kind, c.workers, c.effective_partitions())"
        )
        env = dict(
            os.environ,
            REPRO_EXECUTOR="thread",
            REPRO_WORKERS="3",
            REPRO_PARTITIONS="5",
            PYTHONPATH="src",
        )
        output = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True, cwd="/root/repo",
        ).stdout.split()
        assert output == ["thread", "3", "5"]

    def test_malformed_env_surfaces_as_clean_error_not_at_import(self):
        """A bad REPRO_* variable must not make the package unimportable;
        it raises ExecutionError on first use of the configuration."""
        code = (
            "import repro\n"
            "from repro.errors import ExecutionError\n"
            "from repro.exec import current_config\n"
            "try:\n"
            "    current_config()\n"
            "except ExecutionError as exc:\n"
            "    print('clean error:', exc)\n"
        )
        env = dict(os.environ, REPRO_WORKERS="four", PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True,
            cwd="/root/repo",
        )
        assert "clean error: REPRO_WORKERS must be an integer" in result.stdout

    def test_all_kinds_are_constructible(self):
        for kind in EXECUTOR_KINDS:
            with executor_scope(executor=kind, workers=2):
                assert get_executor().kind == kind


class TestExecutors:
    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_map_preserves_order(self, kind):
        with executor_scope(executor=kind, workers=3):
            result = get_executor().map(lambda x: x * x, range(17))
            assert result == [x * x for x in range(17)]

    @pytest.mark.parametrize("kind", EXECUTOR_KINDS)
    def test_map_propagates_exceptions(self, kind):
        def boom(x):
            if x == 5:
                raise ValueError("task 5 failed")
            return x

        with executor_scope(executor=kind, workers=3):
            with pytest.raises(ValueError, match="task 5"):
                get_executor().map(boom, range(8))

    def test_nested_fan_out_runs_inline(self):
        """A batch issued from inside a task must not re-enter the pool."""
        with executor_scope(executor="thread", workers=2):
            stats = exec_stats()
            baseline = stats.parallel_batches

            def outer(x):
                inner = get_executor().map(lambda y: y + 1, range(4))
                return sum(inner) + x

            result = get_executor().map(outer, range(6))
            assert result == [sum(range(1, 5)) + x for x in range(6)]
            # Only the outer batch fanned out.
            assert stats.parallel_batches == baseline + 1

    def test_single_item_batches_run_inline(self):
        with executor_scope(executor="thread", workers=4):
            stats = exec_stats()
            before = stats.parallel_batches
            assert get_executor().map(lambda x: x, [42]) == [42]
            assert stats.parallel_batches == before

    def test_inside_task_guard_nests(self):
        assert partition_count(100) >= 1
        with _inside_task():
            assert partition_count(100) == 1


class TestPartitioning:
    def test_partition_index_is_stable_and_in_range(self):
        for key in [("a",), ("b", 2), (7,)]:
            index = partition_index(key, 4)
            assert 0 <= index < 4
            assert partition_index(key, 4) == index

    def test_partitions_roundtrip_preserves_tuples_and_policy(self):
        relation = table_ra()
        for n in (1, 2, 3, 8, 17):
            parts = relation.partitions(n)
            assert len(parts) == n
            assert sum(len(part) for part in parts) == len(relation)
            rebuilt = ExtendedRelation.from_partitions(relation.schema, parts)
            assert rebuilt.same_tuples(relation)

    def test_partitions_are_key_disjoint(self):
        parts = table_ra().partitions(3)
        seen = set()
        for part in parts:
            keys = set(part.keys())
            assert not keys & seen
            seen |= keys

    def test_same_entity_lands_in_same_shard_across_relations(self):
        from repro.datasets.restaurants import table_rb

        n = 4
        left_parts = table_ra().partitions(n)
        right_parts = table_rb().partitions(n)
        for index in range(n):
            for key in left_parts[index].keys():
                assert partition_index(key, n) == index
            for key in right_parts[index].keys():
                assert partition_index(key, n) == index

    def test_from_partitions_rejects_overlapping_parts(self):
        relation = table_ra()
        with pytest.raises(RelationError, match="duplicate key"):
            ExtendedRelation.from_partitions(
                relation.schema, [relation, relation]
            )

    def test_partition_count_validation(self):
        with pytest.raises(RelationError):
            table_ra().partitions(0)


class TestRewritePipeline:
    def test_pipeline_names_are_exposed(self):
        assert default_pipeline().describe() == (
            "fuse-and-push-selections -> prune-projections"
        )

    def test_pipeline_is_idempotent(self):
        from repro.storage import Database
        from repro.query.parser import parse
        from repro.query.planner import build_plan

        db = Database()
        db.add(table_ra())
        plan = build_plan(
            parse("SELECT rname FROM RA WHERE rating IS {ex}"), db
        )
        pipeline = default_pipeline()
        once = pipeline.run(plan)
        twice = pipeline.run(once)
        assert once.describe() == twice.describe()


class TestPhysicalLowering:
    def test_describe_physical_shows_strategies(self):
        from repro.storage import Database

        db = Database()
        db.add(table_ra())
        plan = db.session().plan("SELECT rname FROM RA WHERE rating IS {ex}")
        text = describe_physical(plan)
        assert "partition input" in text
        assert "Scan RA" in text
