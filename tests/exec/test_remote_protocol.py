"""Wire-level tests: framing, CRC, truncation, and payload codecs."""

from __future__ import annotations

import pickle
import socket
import struct
import zlib

import pytest

from repro.errors import ExecutionError, ProtocolError
from repro.exec.remote import protocol
from repro.exec.remote.protocol import FrameKind


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5)
    right.settimeout(5)
    return left, right


# -- frames -------------------------------------------------------------------


@pytest.mark.parametrize("kind", list(FrameKind))
@pytest.mark.parametrize("payload", [b"", b"x", b"a" * 5000])
def test_frame_round_trip(kind, payload):
    left, right = _pair()
    try:
        sent = protocol.send_frame(left, kind, payload)
        got_kind, got_payload, received = protocol.recv_frame(right)
        assert got_kind is kind
        assert got_payload == payload
        assert sent == received == protocol._HEADER.size + len(payload)
    finally:
        left.close()
        right.close()


def test_bad_magic_rejected():
    left, right = _pair()
    try:
        frame = protocol._HEADER.pack(b"ZZ", 1, int(FrameKind.PING), 0, 0)
        left.sendall(frame)
        with pytest.raises(ProtocolError, match="magic"):
            protocol.recv_frame(right)
    finally:
        left.close()
        right.close()


def test_version_mismatch_rejected():
    left, right = _pair()
    try:
        frame = protocol._HEADER.pack(b"RX", 99, int(FrameKind.PING), 0, 0)
        left.sendall(frame)
        with pytest.raises(ProtocolError, match="version"):
            protocol.recv_frame(right)
    finally:
        left.close()
        right.close()


def test_unknown_frame_kind_rejected():
    left, right = _pair()
    try:
        frame = protocol._HEADER.pack(b"RX", 1, 200, 0, 0)
        left.sendall(frame)
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            protocol.recv_frame(right)
    finally:
        left.close()
        right.close()


def test_oversized_length_rejected():
    left, right = _pair()
    try:
        frame = protocol._HEADER.pack(
            b"RX", 1, int(FrameKind.BATCH), protocol.MAX_PAYLOAD_BYTES + 1, 0
        )
        left.sendall(frame)
        with pytest.raises(ProtocolError, match="oversized"):
            protocol.recv_frame(right)
    finally:
        left.close()
        right.close()


def test_crc_mismatch_rejected():
    left, right = _pair()
    try:
        payload = b"payload bytes"
        header = protocol._HEADER.pack(
            b"RX",
            1,
            int(FrameKind.RESULT),
            len(payload),
            zlib.crc32(payload) ^ 0xFFFF,
        )
        left.sendall(header + payload)
        with pytest.raises(ProtocolError, match="CRC mismatch"):
            protocol.recv_frame(right)
    finally:
        left.close()
        right.close()


def test_truncated_header_raises():
    left, right = _pair()
    try:
        left.sendall(b"RX\x01")  # 3 of 12 header bytes, then gone
        left.close()
        with pytest.raises(ProtocolError, match="closed mid-frame"):
            protocol.recv_frame(right)
    finally:
        right.close()


def test_truncated_payload_raises():
    left, right = _pair()
    try:
        payload = b"only half arrives"
        header = protocol._HEADER.pack(
            b"RX", 1, int(FrameKind.RESULT), len(payload) * 2, 0
        )
        left.sendall(header + payload)
        left.close()
        with pytest.raises(ProtocolError, match="closed mid-frame"):
            protocol.recv_frame(right)
    finally:
        right.close()


# -- batch / result payloads --------------------------------------------------


def test_batch_payload_round_trip():
    common = protocol.encode_common(len, "unused-common")
    chunk = protocol.encode_chunk([1, "two", 3.0])
    for trace in (False, True):
        payload = protocol.encode_batch(common, chunk, trace)
        got_common, got_chunk, got_trace = protocol.decode_batch(payload)
        assert got_common == common
        assert got_chunk == chunk
        assert got_trace is trace


def test_batch_payload_truncation_detected():
    with pytest.raises(ProtocolError, match="shorter than its own header"):
        protocol.decode_batch(b"\x00\x00")
    common = protocol.encode_common(len, None)
    payload = protocol.encode_batch(common, b"", False)
    with pytest.raises(ProtocolError, match="truncated inside the common"):
        protocol.decode_batch(payload[: 1 + 4 + len(common) // 2])


def test_result_round_trip():
    payload = protocol.encode_result([1, 2, 3], (4, 5, 6), ["span"])
    assert protocol.decode_result(payload) == ([1, 2, 3], (4, 5, 6), ["span"])


def test_undecodable_result_raises():
    with pytest.raises(ProtocolError, match="undecodable RESULT"):
        protocol.decode_result(b"not a pickle")


def test_error_round_trip():
    carried = protocol.decode_error(
        protocol.encode_error(ValueError("task went wrong"))
    )
    assert isinstance(carried, ValueError)
    assert "task went wrong" in str(carried)


def test_unpicklable_error_becomes_execution_error():
    class Unpicklable(Exception):
        def __reduce__(self):
            raise TypeError("nope")

    carried = protocol.decode_error(protocol.encode_error(Unpicklable("boom")))
    assert isinstance(carried, ExecutionError)
    assert "remote task failed" in str(carried)


def test_error_payload_must_be_an_exception():
    with pytest.raises(ProtocolError, match="not an exception"):
        protocol.decode_error(pickle.dumps("just a string"))
    with pytest.raises(ProtocolError, match="undecodable TASK_ERROR"):
        protocol.decode_error(b"garbage")


def test_info_round_trip():
    info = {"pid": 1234, "pool_workers": 2, "version": protocol.VERSION}
    assert protocol.decode_info(protocol.encode_info(info)) == info
    with pytest.raises(ProtocolError, match="not a dict"):
        protocol.decode_info(pickle.dumps([1, 2]))
    with pytest.raises(ProtocolError, match="undecodable HELLO_REPLY"):
        protocol.decode_info(b"\x00garbage")


def test_header_layout_is_stable():
    """The on-wire header is 12 bytes: magic, version, kind, length, crc."""
    assert protocol._HEADER.size == 12
    packed = protocol._HEADER.pack(b"RX", 1, 5, 7, 9)
    assert struct.unpack(">2sBBLL", packed) == (b"RX", 1, 5, 7, 9)
