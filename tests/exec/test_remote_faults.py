"""Fault injection: the cluster misbehaves, the results never do.

Every test computes the same batch serially first and requires the
faulted remote run to be **bit-for-bit identical** -- fault tolerance
that changed answers would be worse than crashing.  Faults injected:

* a worker process killed mid-batch (``SIGTERM`` while its chunk is in
  flight);
* a fake worker that accepts the connection and drops it without
  replying;
* a fake worker that replies with a deliberately truncated frame.

In each case the coordinator must declare the worker dead, re-scatter
the chunk to a survivor (counted in ``exec.remote.retries``), and --
when nothing survives -- finish the batch locally.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.exec.remote import RemoteExecutor, protocol, spawn_local_cluster
from repro.obs.registry import registry


def _metric(name: str) -> int:
    return registry().collect()[name]


def _slow_square(common, item):
    time.sleep(common)
    return item * item


def _square(common, item):
    return item * item


# -- fake workers -------------------------------------------------------------


class _FakeWorker:
    """A listener that handshakes like a worker, then sabotages BATCH.

    *mode* is ``"drop"`` (close the connection instead of replying) or
    ``"truncate"`` (send a frame header promising more payload bytes
    than follow, then close).  Either way the coordinator sees a
    transport failure, never a result.
    """

    def __init__(self, mode: str):
        self.mode = mode
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        host, port = self._listener.getsockname()
        self.address = f"{host}:{port}"
        self.batches_seen = 0
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                connection, _peer = self._listener.accept()
            except OSError:
                return
            try:
                while True:
                    kind, _payload, _ = protocol.recv_frame(connection)
                    if kind == protocol.FrameKind.HELLO:
                        protocol.send_frame(
                            connection,
                            protocol.FrameKind.HELLO_REPLY,
                            protocol.encode_info({"pid": -1}),
                        )
                    elif kind == protocol.FrameKind.PING:
                        protocol.send_frame(
                            connection, protocol.FrameKind.PONG, b""
                        )
                    elif kind == protocol.FrameKind.BATCH:
                        self.batches_seen += 1
                        if self.mode == "truncate":
                            payload = b"never fully sent"
                            header = protocol._HEADER.pack(
                                protocol.MAGIC,
                                protocol.VERSION,
                                int(protocol.FrameKind.RESULT),
                                len(payload) * 4,
                                0,
                            )
                            connection.sendall(header + payload)
                        break  # drop the connection mid-exchange
            except Exception:
                pass
            finally:
                try:
                    connection.close()
                except OSError:
                    pass

    def stop(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


# -- worker death -------------------------------------------------------------


def test_kill_worker_mid_batch_retries_on_survivor(remote_env):
    items = list(range(8))
    expected = [item * item for item in items]
    with spawn_local_cluster(2) as cluster:
        with remote_env(cluster.addr_spec):
            executor = RemoteExecutor()
            try:
                # Warm the connections so the kill lands mid-batch, not
                # mid-handshake.
                assert executor.map_encoded(_square, None, items) == expected
                retries = _metric("exec.remote.retries")
                deaths = _metric("exec.remote.worker_deaths")
                killer = threading.Timer(
                    0.15, cluster.kill_worker, args=(0,)
                )
                killer.start()
                try:
                    results = executor.map_encoded(_slow_square, 0.1, items)
                finally:
                    killer.cancel()
                assert results == expected
                assert _metric("exec.remote.worker_deaths") > deaths
                assert _metric("exec.remote.retries") > retries
            finally:
                executor.close()


def test_whole_cluster_gone_finishes_locally(remote_env):
    items = list(range(6))
    expected = [item * item for item in items]
    with spawn_local_cluster(2) as cluster:
        with remote_env(cluster.addr_spec):
            executor = RemoteExecutor()
            try:
                assert executor.map_encoded(_square, None, items) == expected
                cluster.kill_worker(0)
                cluster.kill_worker(1)
                # Both peers are gone: the chunks must complete locally,
                # quietly, and exactly.
                assert executor.map_encoded(_square, None, items) == expected
            finally:
                executor.close()


# -- transport sabotage -------------------------------------------------------


def _faulted_run(remote_env, mode: str) -> None:
    """One real worker plus one fake *mode* worker: results stay exact."""
    items = list(range(10))
    expected = [item * item for item in items]
    fake = _FakeWorker(mode)
    with spawn_local_cluster(1) as cluster:
        addr_spec = f"{fake.address},{cluster.addr_spec}"
        with remote_env(addr_spec):
            executor = RemoteExecutor()
            try:
                retries = _metric("exec.remote.retries")
                deaths = _metric("exec.remote.worker_deaths")
                results = executor.map_encoded(_square, None, items)
                assert results == expected
                assert fake.batches_seen >= 1, (
                    "the fake worker must have been offered a chunk"
                )
                assert _metric("exec.remote.worker_deaths") > deaths
                assert _metric("exec.remote.retries") > retries
            finally:
                executor.close()
                fake.stop()


def test_dropped_connection_retries_on_survivor(remote_env):
    _faulted_run(remote_env, "drop")


def test_truncated_frame_retries_on_survivor(remote_env):
    _faulted_run(remote_env, "truncate")
