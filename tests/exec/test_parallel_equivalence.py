"""Property tests: any executor x any partition count == serial, exactly.

The acceptance bar of the partitioned physical layer: for random
relations, random partition counts in 1..8 and all four executors
(including the cost-model-driven ``auto``),
every algebra operation, ``Federation.integrate`` and stream
interleavings must produce *exactly* the serial single-partition result
-- same tuples in the same order, exact Fractions exactly, floats
bit-for-bit -- including the total-conflict fallback paths, where no
fold order is canonical but the implementation promises the serial one.

Baselines are always computed under a forced serial/1-partition scope so
the suite stays meaningful when CI runs it with ``REPRO_EXECUTOR``
pointing at a pool.
"""

import random

from fractions import Fraction

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import IsPredicate, select
from repro.algebra.intersection import intersection_with_report
from repro.algebra.project import project
from repro.algebra.thresholds import sn_at_least
from repro.algebra.union import union_with_report
from repro.datasets.generators import SyntheticConfig, synthetic_pair
from repro.datasets.restaurants import table_ra
from repro.errors import TotalConflictError
from repro.exec import executor_scope
from repro.integration import Federation, TupleMerger
from repro.model.domain import EnumeratedDomain
from repro.model.evidence import EvidenceSet
from repro.model.relation import ExtendedRelation
from repro.stream import StreamEngine

EXECUTORS = ("serial", "thread", "process", "auto")

#: One executor per hypothesis example (drawn), every partition count
#: 1..8 checked inside the example.
PARTITIONS = (1, 2, 3, 5, 8)


def _identical(actual: ExtendedRelation, expected: ExtendedRelation) -> bool:
    """Tuple-exact and order-exact equality (== ignores tuple order)."""
    return actual == expected and list(actual.keys()) == list(expected.keys())


def _serial_baseline():
    return executor_scope(executor="serial", workers=1, partitions=None)


@st.composite
def relation_pairs(draw):
    """Union-compatible synthetic relation pairs with varied shape."""
    config = SyntheticConfig(
        n_tuples=draw(st.integers(min_value=0, max_value=18)),
        overlap=draw(st.sampled_from((0.0, 0.5, 1.0))),
        conflict=draw(st.sampled_from((0.0, 0.5, 1.0))),
        ignorance=draw(st.sampled_from((0.3, 1.0))),
        exact=draw(st.booleans()),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return synthetic_pair(config)


@settings(max_examples=20, deadline=None)
@given(
    pair=relation_pairs(),
    executor=st.sampled_from(EXECUTORS),
)
def test_algebra_ops_equal_serial(pair, executor):
    left, right = pair
    predicate = IsPredicate("category", {"c0", "c1", "c2"})
    threshold = sn_at_least("1/4")
    with _serial_baseline():
        union_base, union_report = union_with_report(
            left, right, on_conflict="vacuous"
        )
        intersect_base, _ = intersection_with_report(
            left, right, on_conflict="vacuous"
        )
        select_base = select(left, predicate, threshold)
        project_base = project(left, ("id", "category"))
    for partitions in PARTITIONS:
        with executor_scope(
            executor=executor, workers=3, partitions=partitions
        ):
            merged, report = union_with_report(
                left, right, on_conflict="vacuous"
            )
            assert _identical(merged, union_base)
            assert report.matched == union_report.matched
            assert report.left_only == union_report.left_only
            assert report.right_only == union_report.right_only
            assert report.conflicts == union_report.conflicts
            assert report.dropped == union_report.dropped
            consensus, _ = intersection_with_report(
                left, right, on_conflict="vacuous"
            )
            assert _identical(consensus, intersect_base)
            assert _identical(select(left, predicate, threshold), select_base)
            assert _identical(project(left, ("id", "category")), project_base)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_sources=st.integers(min_value=2, max_value=5),
    executor=st.sampled_from(EXECUTORS),
    partitions=st.integers(min_value=1, max_value=8),
    exact=st.booleans(),
)
def test_federation_integrate_equals_serial(
    seed, n_sources, executor, partitions, exact
):
    reliabilities = (1, Fraction(3, 4), Fraction(9, 10))
    rng = random.Random(seed)
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for index in range(n_sources):
        config = SyntheticConfig(
            n_tuples=rng.randint(0, 20),
            conflict=rng.choice((0.0, 0.5, 1.0)),
            ignorance=rng.choice((0.4, 1.0)),
            exact=exact,
            seed=seed + index,
        )
        from repro.datasets.generators import synthetic_relation

        federation.add_source(
            f"s{index}",
            synthetic_relation(config, f"s{index}"),
            reliability=rng.choice(reliabilities),
        )
    with _serial_baseline():
        expected, expected_report = federation.integrate(name="F")
    with executor_scope(executor=executor, workers=3, partitions=partitions):
        actual, report = federation.integrate(name="F")
    assert _identical(actual, expected)
    assert len(report.steps) == len(expected_report.steps)
    assert report.total_conflicts == expected_report.total_conflicts
    for (label, step), (expected_label, expected_step) in zip(
        report.steps, expected_report.steps
    ):
        assert label == expected_label
        assert sorted(step.matched) == sorted(expected_step.matched)
        assert sorted(step.dropped, key=repr) == sorted(
            expected_step.dropped, key=repr
        )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_events=st.integers(min_value=1, max_value=40),
    executor=st.sampled_from(EXECUTORS),
    partitions=st.integers(min_value=1, max_value=8),
)
def test_stream_interleavings_equal_serial(seed, n_events, executor, partitions):
    """Replay one random event sequence serial and partitioned."""

    def run():
        rng = random.Random(seed)
        config = SyntheticConfig(
            n_tuples=10, conflict=0.6, ignorance=1.0, overlap=1.0, seed=seed
        )
        from repro.datasets.generators import synthetic_relation

        pools = {
            name: tuple(synthetic_relation(config, name))
            for name in ("s0", "s1", "s2")
        }
        schema = pools["s0"][0].schema
        engine = StreamEngine(
            schema, name="F", merger=TupleMerger(on_conflict="vacuous")
        )
        asserted = {name: set() for name in pools}
        for _ in range(n_events):
            roll = rng.random()
            retractable = [name for name in pools if asserted[name]]
            if roll < 0.6 or not retractable:
                source = rng.choice(sorted(pools))
                etuple = rng.choice(pools[source])
                engine.upsert(source, etuple)
                asserted[source].add(etuple.key())
            elif roll < 0.8:
                source = rng.choice(retractable)
                key = rng.choice(sorted(asserted[source]))
                engine.retract(source, key)
                asserted[source].discard(key)
            else:
                engine.flush()
        engine.flush()
        return engine.relation

    with _serial_baseline():
        expected = run()
    with executor_scope(executor=executor, workers=3, partitions=partitions):
        actual = run()
    assert _identical(actual, expected)


# -- total-conflict fallback ordering ----------------------------------------


def _conflicting_relations():
    """Two relations whose matched entities totally conflict on 'colour'."""
    from repro.model.attribute import Attribute
    from repro.model.domain import TextDomain
    from repro.model.etuple import ExtendedTuple
    from repro.model.schema import RelationSchema

    domain = EnumeratedDomain("colour", ("red", "green", "blue"))
    schema = RelationSchema(
        "L",
        [
            Attribute("name", TextDomain("name"), key=True),
            Attribute("colour", domain, uncertain=True),
        ],
    )

    def rel(name, colour_by_key):
        renamed = schema.with_name(name)
        return ExtendedRelation(
            renamed,
            [
                ExtendedTuple(
                    renamed,
                    {
                        "name": key,
                        "colour": EvidenceSet.definite(colour, domain),
                    },
                )
                for key, colour in colour_by_key.items()
            ],
        )

    left = rel("L", {f"e{i}": "red" for i in range(9)} | {"ok": "green"})
    right = rel("R", {f"e{i}": "blue" for i in range(9)} | {"ok": "green"})
    return left, right


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("partitions", (1, 2, 3, 8))
@pytest.mark.parametrize("policy", ("vacuous", "drop"))
def test_total_conflict_fallback_ordering(executor, partitions, policy):
    left, right = _conflicting_relations()
    with _serial_baseline():
        expected, expected_report = union_with_report(
            left, right, on_conflict=policy
        )
    with executor_scope(executor=executor, workers=3, partitions=partitions):
        actual, report = union_with_report(left, right, on_conflict=policy)
    assert _identical(actual, expected)
    assert report.dropped == expected_report.dropped
    assert report.conflicts == expected_report.conflicts


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("partitions", (1, 2, 3, 8))
def test_raise_policy_raises_the_serial_first_conflict(executor, partitions):
    """Under ``raise``, the error names the same entity the serial loop
    would hit first, whatever the executor or sharding."""
    left, right = _conflicting_relations()
    with _serial_baseline():
        with pytest.raises(TotalConflictError) as serial_error:
            union_with_report(left, right, on_conflict="raise")
    with executor_scope(executor=executor, workers=3, partitions=partitions):
        with pytest.raises(TotalConflictError) as parallel_error:
            union_with_report(left, right, on_conflict="raise")
    assert str(parallel_error.value) == str(serial_error.value)


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("partitions", (2, 4, 8))
def test_federation_raise_policy_matches_serial_error(executor, partitions):
    """A sharded raise-policy integrate surfaces the exact serial error
    (same entity, same labels), not whichever shard conflicted first."""
    left, right = _conflicting_relations()
    federation = Federation(TupleMerger(on_conflict="raise"))
    federation.add_source("a", left)
    federation.add_source("b", right)
    with _serial_baseline():
        with pytest.raises(TotalConflictError) as serial_error:
            federation.integrate(name="F")
    with executor_scope(executor=executor, workers=3, partitions=partitions):
        with pytest.raises(TotalConflictError) as parallel_error:
            federation.integrate(name="F")
    assert str(parallel_error.value) == str(serial_error.value)


@pytest.mark.parametrize("executor", EXECUTORS)
def test_query_plans_equal_serial_through_session(executor):
    from repro.datasets.restaurants import table_rb, table_rm_a
    from repro.session import Session
    from repro.storage import Database

    db = Database()
    db.add(table_ra())
    db.add(table_rb())
    db.add(table_rm_a())
    queries = (
        "SELECT rname, rating FROM (RA UNION RB) "
        "WHERE rating IS {ex} WITH SN >= 0.5",
        "SELECT * FROM RA JOIN RM_A ON RA.rname = RM_A.rname",
        "RA INTERSECT RB BY (rname)",
    )
    with _serial_baseline():
        expected = [Session(db).execute(query) for query in queries]
    for partitions in PARTITIONS:
        with executor_scope(
            executor=executor, workers=3, partitions=partitions
        ):
            session = Session(db)
            for query, baseline in zip(queries, expected):
                assert _identical(session.execute(query), baseline)


# -- the remote executor ------------------------------------------------------


def _remote_federation(n_sources: int = 3, n_tuples: int = 30) -> Federation:
    """A deterministic multi-source federation for the remote tests."""
    from repro.datasets.generators import synthetic_relation

    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for index in range(n_sources):
        config = SyntheticConfig(
            n_tuples=n_tuples,
            conflict=0.5,
            ignorance=0.6,
            exact=True,
            seed=41 + index,
        )
        federation.add_source(
            f"s{index}",
            synthetic_relation(config, f"s{index}"),
            reliability=(1, Fraction(3, 4), Fraction(9, 10))[index % 3],
        )
    return federation


@pytest.mark.parametrize("cluster_size", (1, 2, 4))
def test_federation_remote_cluster_equals_serial(cluster_size, remote_env):
    """Bit-for-bit serial equality across 1-, 2- and 4-worker clusters."""
    from repro.exec.remote import spawn_local_cluster

    federation = _remote_federation()
    with _serial_baseline():
        expected, expected_report = federation.integrate(name="F")
    with spawn_local_cluster(cluster_size) as cluster:
        with remote_env(cluster.addr_spec):
            with executor_scope(
                executor="remote", workers=cluster_size, partitions=4
            ):
                actual, report = federation.integrate(name="F")
    assert _identical(actual, expected)
    assert len(report.steps) == len(expected_report.steps)
    assert report.total_conflicts == expected_report.total_conflicts


def test_remote_union_and_plans_equal_serial(remote_cluster, remote_env):
    """Algebra ops and query plans stay exact when sharded over the wire."""
    config = SyntheticConfig(
        n_tuples=25, overlap=0.5, conflict=0.5, ignorance=0.6, seed=99
    )
    left, right = synthetic_pair(config)
    with _serial_baseline():
        union_base, _ = union_with_report(left, right, on_conflict="vacuous")
    with remote_env(remote_cluster.addr_spec):
        with executor_scope(executor="remote", workers=2, partitions=4):
            merged, _ = union_with_report(left, right, on_conflict="vacuous")
    assert _identical(merged, union_base)


def test_stream_flush_remote_equals_serial(remote_cluster, remote_env):
    """A streamed event sequence re-folds identically over the wire."""

    def run():
        rng = random.Random(4242)
        config = SyntheticConfig(
            n_tuples=12, conflict=0.6, ignorance=1.0, overlap=1.0, seed=4242
        )
        from repro.datasets.generators import synthetic_relation

        pools = {
            name: tuple(synthetic_relation(config, name))
            for name in ("s0", "s1", "s2")
        }
        schema = pools["s0"][0].schema
        engine = StreamEngine(
            schema, name="F", merger=TupleMerger(on_conflict="vacuous")
        )
        for _ in range(60):
            source = rng.choice(sorted(pools))
            engine.upsert(source, rng.choice(pools[source]))
            if rng.random() < 0.2:
                engine.flush()
        engine.flush()
        return engine.relation

    with _serial_baseline():
        expected = run()
    with remote_env(remote_cluster.addr_spec):
        with executor_scope(executor="remote", workers=2, partitions=4):
            actual = run()
    assert _identical(actual, expected)


def test_federation_remote_equals_serial_under_worker_death(remote_env):
    """Killing a worker mid-integration must not change a single bit."""
    from repro.exec import get_executor
    from repro.exec.remote import spawn_local_cluster

    federation = _remote_federation(n_tuples=40)
    with _serial_baseline():
        expected, _ = federation.integrate(name="F")
    with spawn_local_cluster(2) as cluster:
        with remote_env(cluster.addr_spec):
            with executor_scope(executor="remote", workers=2, partitions=4):
                # Warm the connections, then pull a worker out from
                # under the next integrate: its chunks must re-scatter
                # to the survivor without reordering anything.
                get_executor().map(_remote_probe, range(4))
                cluster.kill_worker(0)
                actual, _ = federation.integrate(name="F")
    assert _identical(actual, expected)


def _remote_probe(item):
    return item
