"""Shared fixtures for the executor suites: loopback worker clusters.

The remote tests need real daemons on real sockets.  The cluster
fixture is session-scoped so hypothesis ``@given`` tests may use it
(function-scoped fixtures are rejected there), and because forking a
daemon per test would dominate the suite's runtime.  Fault-injection
tests that kill workers spawn their own throwaway clusters instead.
"""

from __future__ import annotations

import contextlib
import os

import pytest


@contextlib.contextmanager
def _remote_env(addr_spec: str, threshold: str | None = "0"):
    """Point ``REPRO_WORKERS_ADDRS`` at *addr_spec* for the duration.

    *threshold* pins ``REPRO_REMOTE_THRESHOLD`` (``"0"`` forces every
    batch onto the wire -- the default here, so tests exercise the
    sockets rather than the cost gate); ``None`` leaves the cost model
    in charge.
    """
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_WORKERS_ADDRS", "REPRO_REMOTE_THRESHOLD")
    }
    os.environ["REPRO_WORKERS_ADDRS"] = addr_spec
    if threshold is None:
        os.environ.pop("REPRO_REMOTE_THRESHOLD", None)
    else:
        os.environ["REPRO_REMOTE_THRESHOLD"] = threshold
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@pytest.fixture(scope="session")
def remote_env():
    """The :func:`_remote_env` context manager, as a fixture."""
    return _remote_env


@pytest.fixture(scope="session")
def remote_cluster():
    """Two loopback worker daemons shared by the whole session."""
    from repro.exec.remote import spawn_local_cluster

    cluster = spawn_local_cluster(2)
    try:
        yield cluster
    finally:
        cluster.stop()
