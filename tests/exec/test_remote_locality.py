"""Shard-resident workers: keys cross the wire, results never change.

The locality layer (``repro worker serve --store``) is pure transport
optimization: whether a chunk ships as entity keys, as encoded tuples,
or runs locally after a fault, the result must be **bit-for-bit** the
serial one -- same tuples, same order, exact masses.  These tests drive
every transition of the fallback ladder:

* the happy path: repeated integrations hit the shard stores
  (``exec.remote.locality_hits``) and save wire bytes;
* a worker killed mid-key-batch: the chunk retries on a synced
  survivor, results stay exact;
* a stale shard epoch (the store mutated out-of-band): the worker
  answers ``SHARD_STALE``, the chunk re-ships as tuples
  (``exec.remote.locality_misses``);
* a cluster where some worker owns no store, an unpublished relation,
  and ``REPRO_REMOTE_LOCALITY=0``: the whole batch quietly uses PR 9's
  tuple shipping.

Equivalence is property-tested over synthetic federations of varied
shape, against a module-scoped sharded cluster.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import threading
import time

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.exec import executor_scope
from repro.exec.remote import RemoteExecutor, spawn_local_cluster
from repro.integration import Federation, TupleMerger
from repro.model.relation import ExtendedRelation
from repro.obs.registry import registry


def _metric(name: str) -> int:
    return registry().collect()[name]


def _identical(actual: ExtendedRelation, expected: ExtendedRelation) -> bool:
    """Tuple-exact and order-exact equality (== ignores tuple order)."""
    return actual == expected and list(actual.keys()) == list(expected.keys())


@contextlib.contextmanager
def _locality(mode: str | None):
    saved = os.environ.get("REPRO_REMOTE_LOCALITY")
    if mode is None:
        os.environ.pop("REPRO_REMOTE_LOCALITY", None)
    else:
        os.environ["REPRO_REMOTE_LOCALITY"] = mode
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_REMOTE_LOCALITY", None)
        else:
            os.environ["REPRO_REMOTE_LOCALITY"] = saved


@pytest.fixture(scope="module")
def sharded_cluster():
    """Two loopback daemons, each owning a SQLite shard store."""
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as store_dir:
        cluster = spawn_local_cluster(2, store_dir=store_dir)
        try:
            yield cluster
        finally:
            cluster.stop()


def _federation(n_tuples: int, conflict: float, seed: int) -> Federation:
    federation = Federation(TupleMerger(on_conflict="vacuous"))
    for index in range(3):
        config = SyntheticConfig(
            n_tuples=n_tuples,
            conflict=conflict,
            ignorance=1.0,
            exact=False,
            seed=seed + index,
        )
        name = f"s{index}"
        federation.add_source(name, synthetic_relation(config, name))
    return federation


def _serial(federation: Federation) -> ExtendedRelation:
    with executor_scope(executor="serial", workers=1, partitions=None):
        relation, _ = federation.integrate(name="F")
    return relation


# -- the keyed task used by the direct executor tests -------------------------


def _keys_of(common, item):
    """Each item is a 1-tuple holding one shard relation."""
    time.sleep(common)
    (relation,) = item
    return list(relation.keys())


def _keyed_batch(n_tuples: int = 48, partitions: int = 6):
    """A published relation, its partitions, and the matching key specs."""
    config = SyntheticConfig(
        n_tuples=n_tuples, conflict=0.3, ignorance=0.5, exact=False, seed=9
    )
    relation = synthetic_relation(config, "R")
    parts = relation.partitions(partitions)
    specs = [(("R", tuple(part.keys())),) for part in parts]
    items = [(part,) for part in parts]
    expected = [list(part.keys()) for part in parts]
    return relation, specs, items, expected


# -- equivalence --------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(
    n_tuples=st.integers(min_value=0, max_value=40),
    conflict=st.sampled_from((0.0, 0.4, 1.0)),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_keyed_integration_equals_serial(
    sharded_cluster, remote_env, n_tuples, conflict, seed
):
    """Property: key-only scatter reproduces the serial fold exactly."""
    federation = _federation(n_tuples, conflict, seed)
    expected = _serial(federation)
    with remote_env(sharded_cluster.addr_spec):
        with _locality("1"):
            with executor_scope(executor="remote", workers=2, partitions=4):
                relation, _ = federation.integrate(name="F")
    assert _identical(relation, expected)


def test_repeated_integration_hits_shards_and_saves_bytes(
    sharded_cluster, remote_env
):
    """The point of the layer: repeat runs ship keys and count savings."""
    federation = _federation(150, 0.4, 71)
    expected = _serial(federation)
    with remote_env(sharded_cluster.addr_spec):
        with executor_scope(executor="remote", workers=2, partitions=4):
            # A tuple-shipping run first, so the cost model holds a
            # measured bytes-per-item estimate for the savings metric.
            with _locality("0"):
                relation, _ = federation.integrate(name="F")
                assert _identical(relation, expected)
            with _locality("1"):
                first, _ = federation.integrate(name="F")
                hits_before = _metric("exec.remote.locality_hits")
                saved_before = _metric("exec.remote.bytes_saved")
                second, _ = federation.integrate(name="F")
    assert _identical(first, expected)
    assert _identical(second, expected)
    assert _metric("exec.remote.locality_hits") > hits_before
    assert _metric("exec.remote.bytes_saved") > saved_before


# -- fault injection ----------------------------------------------------------


def test_worker_death_mid_key_batch_retries_on_survivor(remote_env):
    relation, specs, items, expected = _keyed_batch()
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as store_dir:
        with spawn_local_cluster(2, store_dir=store_dir) as cluster:
            with remote_env(cluster.addr_spec), _locality("1"):
                executor = RemoteExecutor()
                try:
                    executor.publish_relation(relation)
                    # Warm run: connections up, stores synced, so the
                    # kill lands mid-key-batch, not mid-handshake.
                    warm = executor.map_encoded_keyed(
                        _keys_of, 0.0, specs, items
                    )
                    assert warm == expected
                    deaths = _metric("exec.remote.worker_deaths")
                    killer = threading.Timer(
                        0.15, cluster.kill_worker, args=(0,)
                    )
                    killer.start()
                    try:
                        results = executor.map_encoded_keyed(
                            _keys_of, 0.1, specs, items
                        )
                    finally:
                        killer.cancel()
                    assert results == expected
                    assert _metric("exec.remote.worker_deaths") > deaths
                finally:
                    executor.close()


def test_stale_shard_epoch_falls_back_to_tuple_shipping(remote_env):
    relation, specs, items, expected = _keyed_batch()
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as store_dir:
        with spawn_local_cluster(2, store_dir=store_dir) as cluster:
            with remote_env(cluster.addr_spec), _locality("1"):
                executor = RemoteExecutor()
                try:
                    executor.publish_relation(relation)
                    warm = executor.map_encoded_keyed(
                        _keys_of, 0.0, specs, items
                    )
                    assert warm == expected
                    # Out-of-band mutation: another writer bumps every
                    # store's catalog version behind the coordinator's
                    # back, so its cached epochs are stale.
                    from repro.storage.backends import open_backend

                    intruder = synthetic_relation(
                        SyntheticConfig(n_tuples=2, seed=3), "Intruder"
                    )
                    for store_url in cluster.stores:
                        backend = open_backend(store_url)
                        try:
                            backend.save_relation(intruder)
                        finally:
                            backend.close()
                    misses = _metric("exec.remote.locality_misses")
                    results = executor.map_encoded_keyed(
                        _keys_of, 0.0, specs, items
                    )
                    assert results == expected
                    assert _metric("exec.remote.locality_misses") > misses
                finally:
                    executor.close()


# -- whole-batch fallbacks ----------------------------------------------------


def test_storeless_worker_forces_tuple_shipping(remote_env):
    """A mixed cluster (one daemon without --store) ships tuples."""
    relation, specs, items, expected = _keyed_batch()
    with tempfile.TemporaryDirectory(prefix="repro-shards-") as store_dir:
        with spawn_local_cluster(1, store_dir=store_dir) as sharded:
            with spawn_local_cluster(1) as plain:
                spec = f"{sharded.addr_spec},{plain.addr_spec}"
                with remote_env(spec), _locality("1"):
                    executor = RemoteExecutor()
                    try:
                        executor.publish_relation(relation)
                        hits = _metric("exec.remote.locality_hits")
                        results = executor.map_encoded_keyed(
                            _keys_of, 0.0, specs, items
                        )
                        assert results == expected
                        assert _metric("exec.remote.locality_hits") == hits
                    finally:
                        executor.close()


def test_unpublished_relation_forces_tuple_shipping(
    sharded_cluster, remote_env
):
    """Specs naming a never-published relation cannot go keyed."""
    _relation, specs, items, expected = _keyed_batch()
    with remote_env(sharded_cluster.addr_spec), _locality("1"):
        executor = RemoteExecutor()
        try:
            hits = _metric("exec.remote.locality_hits")
            results = executor.map_encoded_keyed(_keys_of, 0.0, specs, items)
            assert results == expected
            assert _metric("exec.remote.locality_hits") == hits
        finally:
            executor.close()


def test_locality_env_off_ships_tuples(sharded_cluster, remote_env):
    relation, specs, items, expected = _keyed_batch()
    with remote_env(sharded_cluster.addr_spec), _locality("0"):
        executor = RemoteExecutor()
        try:
            executor.publish_relation(relation)
            hits = _metric("exec.remote.locality_hits")
            results = executor.map_encoded_keyed(_keys_of, 0.0, specs, items)
            assert results == expected
            assert _metric("exec.remote.locality_hits") == hits
        finally:
            executor.close()
