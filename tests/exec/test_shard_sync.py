"""ShardSyncManager planning and the shard-locality wire codecs.

The manager decides *what* crosses the wire before a key-only scatter:
nothing for a current client, an O(delta) upsert list for a client a
few published versions behind, a full snapshot for everyone else.
These tests pin that ladder -- and the pickle round-trips of the
``SHARD_SYNC`` / ``KEY_BATCH`` payloads carrying it.
"""

from __future__ import annotations

import pytest

from repro.datasets.generators import SyntheticConfig, synthetic_relation
from repro.errors import ProtocolError
from repro.exec.remote import ShardSyncManager, protocol
from repro.exec.remote.shards import MAX_DELTA_LOG
from repro.model.relation import ExtendedRelation


def _relation(n: int = 8, seed: int = 5, name: str = "R"):
    config = SyntheticConfig(n_tuples=n, ignorance=0.5, seed=seed)
    return synthetic_relation(config, name)


def _with_rows(relation, rows):
    return ExtendedRelation(relation.schema, rows, on_unsupported="allow")


# -- publishing and planning --------------------------------------------------


def test_fresh_client_receives_a_full_snapshot():
    manager = ShardSyncManager()
    relation = _relation()
    manager.publish(relation)
    ops, versions = manager.plan_for({}, ["R"])
    assert [op[0] for op in ops] == ["full"]
    assert ops[0][1] == "R"
    assert ops[0][2] is relation
    assert versions == {"R": 1}
    assert manager.pending_items({}, ["R"]) == len(relation)


def test_current_client_receives_nothing():
    manager = ShardSyncManager()
    manager.publish(_relation())
    ops, versions = manager.plan_for({"R": 1}, ["R"])
    assert ops == []
    assert versions == {"R": 1}
    assert manager.pending_items({"R": 1}, ["R"]) == 0


def test_unpublished_name_plans_none():
    manager = ShardSyncManager()
    assert manager.plan_for({}, ["ghost"]) is None
    assert manager.pending_items({}, ["ghost"]) is None


def test_lagging_client_receives_only_the_delta():
    manager = ShardSyncManager()
    relation = _relation(n=10)
    manager.publish(relation)
    rows = list(relation)
    # Drop one entity and keep the rest untouched: version 2's delta
    # is exactly that one key.
    removed_key = rows[3].key()
    updated = _with_rows(relation, rows[:3] + rows[4:])
    manager.publish(updated)
    ops, versions = manager.plan_for({"R": 1}, ["R"])
    assert [op[0] for op in ops] == ["delta"]
    _, name, schema, upserts, removes = ops[0]
    assert name == "R" and schema == relation.schema
    assert upserts == []
    assert removes == [removed_key]
    assert versions == {"R": 2}
    assert manager.pending_items({"R": 1}, ["R"]) == 1


def test_dirty_hints_shape_the_delta():
    manager = ShardSyncManager()
    relation = _relation(n=6)
    manager.publish(relation)
    hinted = next(iter(relation)).key()
    # Same content, but the publisher says one key changed: trust it.
    manager.publish(_with_rows(relation, list(relation)), changed=[hinted])
    ops, _versions = manager.plan_for({"R": 1}, ["R"])
    (_, _, _, upserts, removes) = ops[0][:5]
    assert [etuple.key() for etuple in upserts] == [hinted]
    assert removes == []


def test_quiet_republish_keeps_clients_current():
    manager = ShardSyncManager()
    relation = _relation()
    manager.publish(relation)
    manager.publish(relation)  # identical object
    manager.publish(_with_rows(relation, list(relation)))  # same content
    ops, versions = manager.plan_for({"R": 1}, ["R"])
    assert ops == [] and versions == {"R": 1}


def test_schema_change_forces_full_resync():
    from repro.algebra.project import project

    manager = ShardSyncManager()
    relation = _relation()
    manager.publish(relation)
    # The same name with a projected (different) schema: every stored
    # row is invalid, so even a one-version-behind client resyncs full.
    narrowed = project(relation, ("id", "category")).with_name("R")
    assert narrowed.schema != relation.schema
    manager.publish(narrowed)
    ops, versions = manager.plan_for({"R": 1}, ["R"])
    assert [op[0] for op in ops] == ["full"]
    assert versions == {"R": 2}


def test_client_behind_the_delta_log_gets_a_snapshot():
    manager = ShardSyncManager()
    relation = _relation(n=4)
    manager.publish(relation)
    rows = list(relation)
    current = relation
    for round_number in range(MAX_DELTA_LOG + 2):
        # Rotate which single entity is hinted dirty each round.
        hinted = rows[round_number % len(rows)].key()
        current = _with_rows(relation, list(current))
        manager.publish(current, changed=[hinted])
    ops, _versions = manager.plan_for({"R": 1}, ["R"])
    assert [op[0] for op in ops] == ["full"]
    # A client inside the retained window still gets a delta.
    recent = manager.plan_for({"R": MAX_DELTA_LOG + 2}, ["R"])
    assert [op[0] for op in recent[0]] == ["delta"]


def test_force_full_overrides_the_delta_log():
    manager = ShardSyncManager()
    relation = _relation(n=5)
    manager.publish(relation)
    manager.publish(
        _with_rows(relation, list(relation)),
        changed=[next(iter(relation)).key()],
    )
    ops, _ = manager.plan_for({"R": 1}, ["R"], force_full=True)
    assert [op[0] for op in ops] == ["full"]


# -- wire codecs --------------------------------------------------------------


def test_sync_payload_round_trips():
    relation = _relation(n=3)
    ops = [
        ("full", "R", relation),
        ("delta", "R", relation.schema, list(relation)[:1], ["k1"]),
    ]
    decoded = protocol.decode_sync(protocol.encode_sync(ops))
    assert decoded[0][0] == "full"
    assert decoded[0][2] == relation
    kind, name, schema, upserts, removed = decoded[1]
    assert (kind, name, removed) == ("delta", "R", ["k1"])
    assert schema == relation.schema
    assert upserts == list(relation)[:1]


def test_keyspec_payload_round_trips():
    specs = [(("R", (("a",), ("b",))),), (("R", ()), ("S", (("c",),)))]
    epoch, decoded = protocol.decode_keyspec(
        protocol.encode_keyspec(7, specs)
    )
    assert epoch == 7
    assert decoded == specs


def test_malformed_locality_payloads_raise_protocol_error():
    with pytest.raises(ProtocolError):
        protocol.decode_sync(b"not a pickle")
    with pytest.raises(ProtocolError):
        protocol.decode_keyspec(b"\x80")
