"""The :class:`RemoteExecutor` against a real loopback cluster.

Order exactness, remote placement (pids), wire telemetry, the cost
gate, graceful local fallbacks, configuration errors, and shutdown
idempotence.  Fault injection (worker death, dropped connections,
truncated frames) lives in ``test_remote_faults.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError
from repro.exec import configure, executor_scope, get_executor
from repro.exec.executors import EXECUTOR_KINDS, _shutdown_at_exit
from repro.exec.remote import RemoteExecutor
from repro.exec.remote.worker import parse_address
from repro.obs.registry import registry


def _metric(name: str) -> int:
    return registry().collect()[name]


def _tag_pid(common, item):
    """Encoded-path task: carry the executing pid home with the result."""
    return (os.getpid(), item * common)


def _double(item):
    return item * 2


# -- scatter/gather correctness -----------------------------------------------


def test_map_encoded_exact_order_on_remote_pids(remote_cluster, remote_env):
    with remote_env(remote_cluster.addr_spec):
        executor = RemoteExecutor()
        try:
            results = executor.map_encoded(_tag_pid, 3, list(range(50)))
        finally:
            executor.close()
    assert [value for _pid, value in results] == [i * 3 for i in range(50)]
    pids = {pid for pid, _value in results}
    assert os.getpid() not in pids, "work must leave this process"
    assert len(pids) == 2, "both workers should take a chunk"


def test_map_ships_module_level_tasks(remote_cluster, remote_env):
    with remote_env(remote_cluster.addr_spec):
        executor = RemoteExecutor()
        try:
            before = _metric("exec.remote.batches")
            assert executor.map(_double, range(20)) == [
                i * 2 for i in range(20)
            ]
            assert _metric("exec.remote.batches") == before + 1
        finally:
            executor.close()


def test_wire_telemetry_counts_bytes_and_tasks(remote_cluster, remote_env):
    with remote_env(remote_cluster.addr_spec):
        executor = RemoteExecutor()
        try:
            sent = _metric("exec.remote.bytes_sent")
            received = _metric("exec.remote.bytes_received")
            tasks = _metric("exec.remote.tasks")
            executor.map_encoded(_tag_pid, 2, list(range(32)))
        finally:
            executor.close()
    assert _metric("exec.remote.bytes_sent") > sent
    assert _metric("exec.remote.bytes_received") > received
    assert _metric("exec.remote.tasks") == tasks + 32


def test_task_error_propagates_without_retry(remote_cluster, remote_env):
    before_retries = _metric("exec.remote.retries")
    with remote_env(remote_cluster.addr_spec):
        executor = RemoteExecutor()
        try:
            with pytest.raises(ZeroDivisionError):
                executor.map_encoded(_divide_common, 0, [1, 2, 3, 4])
        finally:
            executor.close()
    assert _metric("exec.remote.retries") == before_retries


def _divide_common(common, item):
    return item / common


# -- staying local when remote cannot or should not help ----------------------


def test_cost_gate_keeps_small_batches_local(remote_cluster, remote_env):
    from repro.exec import cost

    cost.reset_remote_samples()
    with remote_env(remote_cluster.addr_spec, threshold=None):
        executor = RemoteExecutor()
        try:
            batches = _metric("exec.remote.batches")
            local = _metric("exec.remote.local_batches")
            assert executor.map_encoded(_tag_pid, 1, [1, 2, 3]) == [
                (os.getpid(), 1),
                (os.getpid(), 2),
                (os.getpid(), 3),
            ]
        finally:
            executor.close()
    assert _metric("exec.remote.batches") == batches, (
        "a 3-item batch must never pay a network round trip"
    )
    assert _metric("exec.remote.local_batches") == local + 1


def test_threshold_env_pins_the_gate(remote_cluster, remote_env):
    with remote_env(remote_cluster.addr_spec, threshold="1000"):
        executor = RemoteExecutor()
        try:
            batches = _metric("exec.remote.batches")
            executor.map_encoded(_tag_pid, 1, list(range(100)))
            assert _metric("exec.remote.batches") == batches
        finally:
            executor.close()


def test_malformed_threshold_raises_config_error(remote_cluster, remote_env):
    with remote_env(remote_cluster.addr_spec, threshold="lots"):
        executor = RemoteExecutor()
        try:
            with pytest.raises(ConfigError, match="REPRO_REMOTE_THRESHOLD"):
                executor.map_encoded(_tag_pid, 1, list(range(10)))
        finally:
            executor.close()


def test_closures_fall_back_locally(remote_cluster, remote_env):
    factor = 7
    with remote_env(remote_cluster.addr_spec):
        executor = RemoteExecutor()
        try:
            fallbacks = _metric("exec.remote.fallbacks")
            assert executor.map(lambda item: item * factor, range(10)) == [
                i * 7 for i in range(10)
            ]
        finally:
            executor.close()
    assert _metric("exec.remote.fallbacks") == fallbacks + 1


def test_no_addresses_degrades_to_local(remote_env):
    with remote_env("", threshold="0"):
        executor = RemoteExecutor()
        try:
            assert executor.map(_double, range(12)) == [
                i * 2 for i in range(12)
            ]
        finally:
            executor.close()


# -- configuration ------------------------------------------------------------


def test_configure_rejects_unknown_kind_naming_valid_ones():
    with pytest.raises(ConfigError) as excinfo:
        configure(executor="distributed")
    message = str(excinfo.value)
    for kind in EXECUTOR_KINDS:
        assert kind in message
    # the process-global configuration must be untouched by the failure
    assert get_executor().kind in EXECUTOR_KINDS


def test_remote_is_a_first_class_kind(remote_cluster, remote_env):
    assert "remote" in EXECUTOR_KINDS
    with remote_env(remote_cluster.addr_spec):
        with executor_scope(executor="remote", workers=2):
            executor = get_executor()
            assert executor.kind == "remote"
            assert executor.map(_double, range(8)) == [
                i * 2 for i in range(8)
            ]


def test_parse_address_accepts_both_shapes():
    import socket as socket_module

    family, address = parse_address("127.0.0.1:9000")
    assert family == socket_module.AF_INET
    assert address == ("127.0.0.1", 9000)
    family, address = parse_address("unix:/tmp/worker.sock")
    assert family == socket_module.AF_UNIX
    assert address == "/tmp/worker.sock"


@pytest.mark.parametrize("spec", ["", "no-port", "host:notaport", "unix:"])
def test_parse_address_rejects_garbage(spec):
    with pytest.raises(ConfigError):
        parse_address(spec)


# -- shutdown -----------------------------------------------------------------


def test_close_is_idempotent(remote_cluster, remote_env):
    with remote_env(remote_cluster.addr_spec):
        executor = RemoteExecutor()
        executor.map_encoded(_tag_pid, 1, list(range(8)))
        executor.close()
        executor.close()  # second close: nothing left, nothing raised
        # and the executor still works -- it reconnects transparently
        results = executor.map_encoded(_tag_pid, 1, list(range(8)))
        assert [value for _pid, value in results] == list(range(8))
        executor.close()


def test_atexit_hook_is_registered_and_reentrant():
    # the interpreter-exit hook must tolerate being called repeatedly
    # and alongside explicit close() calls
    _shutdown_at_exit()
    _shutdown_at_exit()
    assert get_executor().kind in EXECUTOR_KINDS
