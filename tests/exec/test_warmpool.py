"""The warm worker pool: reuse, fallback, and encoded dispatch.

The equivalence suite already proves warm-pool results are bit-for-bit
serial; these tests pin the *mechanics*: one fork paid across many
batches, unpicklable payloads declined before dispatch, exceptions
propagated, order preserved, and the process-global registry handing
out one pool per worker count.
"""

import multiprocessing
import os

import pytest

from repro.exec import warmpool
from repro.exec.executors import ProcessExecutor, executor_scope, get_executor
from repro.obs import registry


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return False
    return True


pytestmark = pytest.mark.skipif(
    not _has_fork(), reason="warm pool requires the fork start method"
)


# Module-level task functions: the warm pool pickles tasks by reference.


def _scale(common, item):
    return common * item


def _whoami(common, item):
    return os.getpid()


def _explode(common, item):
    raise ValueError(f"boom on {item!r}")


@pytest.fixture()
def pool():
    warm = warmpool.WarmPool(workers=2)
    yield warm
    warm.close()


class TestWarmPool:
    def test_results_in_item_order(self, pool):
        items = list(range(17))
        assert pool.submit_batch(_scale, 3, items) == [3 * x for x in items]

    def test_one_fork_across_many_batches(self, pool):
        spawns = registry().counter("exec.warmpool.spawns")
        before = spawns.value
        for _ in range(3):
            assert pool.submit_batch(_scale, 2, [1, 2, 3]) == [2, 4, 6]
        assert spawns.value == before + 1

    def test_work_runs_in_child_processes(self, pool):
        pids = set(pool.submit_batch(_whoami, None, list(range(8))))
        assert os.getpid() not in pids

    def test_unpicklable_payload_declined_before_dispatch(self, pool):
        fallbacks = registry().counter("exec.warmpool.fallbacks")
        before = fallbacks.value
        # A lambda pickles by reference and has none: dumps fails in the
        # driver, so the caller gets None and no worker is ever forked.
        assert pool.submit_batch(lambda c, i: i, None, [1, 2]) is None
        assert fallbacks.value == before + 1
        assert "cold" in repr(pool)

    def test_task_exception_propagates(self, pool):
        with pytest.raises(ValueError, match="boom"):
            pool.submit_batch(_explode, None, [1, 2, 3])
        # The pool survives a task exception and keeps serving.
        assert pool.submit_batch(_scale, 1, [5]) == [5]

    def test_close_then_reuse_reforks(self, pool):
        spawns = registry().counter("exec.warmpool.spawns")
        assert pool.submit_batch(_scale, 1, [1]) == [1]
        pool.close()
        assert "cold" in repr(pool)
        before = spawns.value
        assert pool.submit_batch(_scale, 1, [2]) == [2]
        assert spawns.value == before + 1

    def test_chunks_are_contiguous_and_cover_everything(self, pool):
        for count in (1, 2, 3, 7):
            items = list(range(count))
            chunks = pool._chunk(items)
            assert len(chunks) <= pool.workers
            assert [x for chunk in chunks for x in chunk] == items
            assert all(chunk for chunk in chunks)


class TestPoolRegistry:
    def test_one_shared_pool_per_worker_count(self):
        assert warmpool.get_pool(2) is warmpool.get_pool(2)
        assert warmpool.get_pool(2) is not warmpool.get_pool(3)

    def test_shutdown_is_idempotent(self):
        warmpool.get_pool(2)
        warmpool.shutdown()
        warmpool.shutdown()
        # The registry re-creates pools on demand after a shutdown.
        assert warmpool.get_pool(2) is not None


class TestMapEncoded:
    def test_process_executor_routes_through_the_warm_pool(self):
        dispatches = registry().counter("exec.warmpool.dispatches")
        executor = ProcessExecutor(workers=2, warm=True)
        before = dispatches.value
        items = list(range(12))
        assert executor.map_encoded(_scale, 4, items) == [
            4 * x for x in items
        ]
        assert dispatches.value == before + 1

    def test_warm_flag_off_uses_fork_per_batch(self):
        dispatches = registry().counter("exec.warmpool.dispatches")
        executor = ProcessExecutor(workers=2, warm=False)
        before = dispatches.value
        assert executor.map_encoded(_scale, 2, [1, 2, 3]) == [2, 4, 6]
        assert dispatches.value == before

    def test_unpicklable_common_falls_back_transparently(self):
        executor = ProcessExecutor(workers=2, warm=True)
        handle = open(os.devnull)  # noqa: SIM115 -- deliberately unpicklable
        try:
            # common cannot pickle; the fork path inherits it by memory
            # and the batch still completes with exact results.
            result = executor.map_encoded(
                lambda common, item: item * 2, handle, [1, 2, 3]
            )
        finally:
            handle.close()
        assert result == [2, 4, 6]

    def test_every_executor_kind_agrees(self):
        items = list(range(9))
        expected = [5 * x for x in items]
        for kind in ("serial", "thread", "process", "auto"):
            with executor_scope(executor=kind, workers=2):
                assert get_executor().map_encoded(_scale, 5, items) == expected
