"""The metrics registry: instruments, adoption, export formats.

Unit tests run against *fresh* :class:`MetricsRegistry` instances so
they cannot disturb the process-wide registry other tests read; the
stable-name tests at the bottom assert the global catalogue the CLI and
Prometheus surfaces depend on.
"""

from __future__ import annotations

import json
import threading

from dataclasses import dataclass

import pytest

from repro import Database, table_ra, table_rb
from repro.obs import MetricsRegistry, registry
from repro.obs.registry import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter_increments_and_resets(self):
        reg = MetricsRegistry()
        counter = reg.counter("t.hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("t.hits") is reg.counter("t.hits")
        assert reg.gauge("t.depth") is reg.gauge("t.depth")
        assert reg.histogram("t.lat") is reg.histogram("t.lat")

    def test_kind_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("t.hits")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("t.hits")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("t.hits")

    def test_gauge_set_and_callback(self):
        reg = MetricsRegistry()
        explicit = reg.gauge("t.depth")
        explicit.set(7.5)
        assert explicit.value == 7.5
        computed = reg.gauge("t.live", callback=lambda: 42)
        assert computed.value == 42

    def test_histogram_aggregates(self):
        reg = MetricsRegistry()
        hist = reg.histogram("t.lat")
        for value in (0.002, 0.02, 0.2, 2.0):
            hist.observe(value)
        snap = hist.value
        assert snap["count"] == 4
        assert snap["min"] == 0.002
        assert snap["max"] == 2.0
        assert abs(snap["sum"] - 2.222) < 1e-12
        # One observation per matching bucket, none lost to +inf.
        assert sum(snap["buckets"]) == 4


class TestAdoption:
    def test_register_source_surfaces_and_resets(self):
        reg = MetricsRegistry()
        state = {"calls": 3}
        reg.register_source(
            "src", lambda: dict(state), lambda: state.update(calls=0)
        )
        assert reg.collect()["src.calls"] == 3
        reg.reset()
        assert reg.collect()["src.calls"] == 0

    def test_attached_groups_sum_over_live_instances(self):
        @dataclass
        class Stats:
            queries: int = 0

        reg = MetricsRegistry()
        first, second = Stats(queries=2), Stats(queries=5)
        reg.attach("grp", first)
        reg.attach("grp", second)
        assert reg.group_total("grp", "queries") == 7
        assert reg.collect()["grp.queries"] == 7
        # Weakly held: a collected instance leaves the sum.
        del second
        assert reg.group_total("grp", "queries") == 2

    def test_reset_leaves_attached_groups_alone(self):
        @dataclass
        class Stats:
            queries: int = 0

        reg = MetricsRegistry()
        stats = Stats(queries=9)
        reg.attach("grp", stats)
        reg.counter("t.hits").inc()
        reg.reset()
        assert reg.collect() == {"grp.queries": 9, "t.hits": 0}


class TestExport:
    @pytest.fixture
    def loaded(self):
        reg = MetricsRegistry()
        reg.counter("t.hits").inc(3)
        reg.gauge("t.depth").set(1.5)
        reg.histogram("t.lat").observe(0.003)
        return reg

    def test_collect_is_flat_and_sorted(self, loaded):
        names = list(loaded.collect())
        assert names == sorted(names) == ["t.depth", "t.hits", "t.lat"]

    def test_render_is_an_aligned_table(self, loaded):
        rendered = loaded.render()
        assert rendered.startswith("metrics:")
        assert "  t.hits   3" in rendered
        assert "n=1" in rendered

    def test_to_json_round_trips(self, loaded):
        payload = json.loads(json.dumps(loaded.to_json()))
        assert payload["t.hits"] == 3
        assert payload["t.lat"]["count"] == 1

    def test_prometheus_exposition(self, loaded):
        text = loaded.prometheus()
        assert "# TYPE repro_t_hits counter" in text
        assert "repro_t_hits 3" in text
        assert "# TYPE repro_t_depth gauge" in text
        assert "# TYPE repro_t_lat histogram" in text
        assert 'repro_t_lat_bucket{le="+Inf"} 1' in text
        assert "repro_t_lat_count 1" in text
        # Bucket series are cumulative: every bound >= 0.003 counts 1.
        assert 'repro_t_lat_bucket{le="0.005"} 1' in text
        assert 'repro_t_lat_bucket{le="0.001"} 0' in text


class TestConcurrency:
    """Histograms keep the thread-local-cell exactness contract.

    Storage latency histograms are bumped from pool threads; eight
    threads hammer one histogram through a start barrier and the
    aggregate must come out exact, not merely close.
    """

    THREADS = 8
    ROUNDS = 250

    def test_concurrent_observations_counted_exactly(self):
        hist = Histogram("t.hammer")
        barrier = threading.Barrier(self.THREADS)
        failures = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(self.ROUNDS):
                    hist.observe(1.0)
            except Exception as exc:  # pragma: no cover - diagnostic aid
                failures.append(exc)

        workers = [
            threading.Thread(target=hammer) for _ in range(self.THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert not failures
        expected = self.THREADS * self.ROUNDS
        snap = hist.value
        # 1.0 sums exactly in floats, so == is the right assertion.
        assert snap["count"] == expected
        assert snap["sum"] == float(expected)
        assert snap["min"] == snap["max"] == 1.0
        assert sum(snap["buckets"]) == expected


class TestGlobalCatalogue:
    """The process-wide names the CLI/Prometheus surfaces depend on."""

    def test_core_names_are_registered(self):
        db = Database("names")
        db.add(table_ra())
        db.add(table_rb())
        db.session().execute("RA UNION RB BY (rname)")
        names = registry().names()
        for expected in (
            "kernel.kernel_combinations",
            "kernel.fallback_combinations",
            "kernel.compilations",
            "exec.parallel_batches",
            "exec.inline_batches",
            "exec.tasks",
            "session.queries",
            "session.plans_built",
            "session.plan_cache_hit_ratio",
            "session.result_cache_hit_ratio",
            "stream.ingest_lag_events",
            "stream.watermark_age_seconds",
        ):
            assert expected in names

    def test_instrument_kinds_are_stable(self):
        reg = registry()
        assert isinstance(reg.counter("tests.scratch.counter"), Counter)
        assert isinstance(reg.gauge("session.plan_cache_hit_ratio"), Gauge)
        with pytest.raises(ValueError):
            reg.counter("session.plan_cache_hit_ratio")
