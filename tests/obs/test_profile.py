"""EXPLAIN ANALYZE profiles and per-batch flush profiles.

The acceptance contract: profiling a 3-operator query returns per-node
wall time and *exact* input/output row counts, and those row counts are
identical whichever executor runs the plan -- the serial-equivalence
guarantee extends to the measurements.
"""

from __future__ import annotations

import json

import pytest

from repro import Database, StreamEngine, TupleMerger, table_ra, table_rb
from repro.exec import executor_scope
from repro.obs import FlushProfile, QueryProfile
from repro.session import Session

QUERY = (
    "SELECT rname, rating FROM (RA UNION RB BY (rname)) "
    "WHERE rating IS {ex} WITH SN >= 0.5"
)

#: (executor, workers) configurations the profile must agree across.
SCOPES = (("serial", 1), ("thread", 4), ("process", 2))


@pytest.fixture
def db():
    database = Database("profiling")
    database.add(table_ra())
    database.add(table_rb())
    return database


def shape(profile: QueryProfile):
    """The executor-independent part of a profile."""
    return [
        (node.label, node.rows_in, node.rows_out)
        for node in profile.nodes()
    ]


class TestExplainAnalyze:
    def test_three_op_query_measures_every_node(self, db):
        profile = Session(db).explain_analyze(QUERY)
        assert profile.rows == 3
        # select <- project <- union <- (scan, scan): five nodes.
        labels = [node.label for node in profile.nodes()]
        assert len(labels) == 5
        assert labels[0].startswith("Select")
        assert "Union by (rname)" in labels
        for node in profile.nodes():
            assert node.wall_seconds >= 0.0
            assert node.partitions >= 1
        union = next(n for n in profile.nodes() if "Union" in n.label)
        assert union.rows_in == (6, 5)
        assert union.rows_out == 6
        # The union pools evidence: combinations happened and the
        # kernel/fallback split is accounted.
        assert union.kernel_combinations + union.fallback_combinations > 0
        assert profile.wall_seconds > 0.0

    def test_row_counts_identical_under_every_executor(self, db):
        shapes = {}
        for executor, workers in SCOPES:
            with executor_scope(executor=executor, workers=workers):
                profile = Session(db).explain_analyze(QUERY)
            assert profile.executor == executor
            assert profile.workers == workers
            shapes[executor] = shape(profile)
            assert all(
                node.wall_seconds >= 0.0 for node in profile.nodes()
            )
        assert shapes["thread"] == shapes["serial"]
        assert shapes["process"] == shapes["serial"]

    def test_profile_bypasses_the_result_cache(self, db):
        session = Session(db)
        session.execute(QUERY)
        session.execute(QUERY)  # cached now
        profile = session.explain_analyze(QUERY)
        # A cached run would execute zero nodes; the profile re-runs
        # the plan and measures real row flow.
        assert profile.rows == 3
        assert shape(profile)[0][2] == 3

    def test_describe_and_json(self, db):
        profile = Session(db).explain_analyze(QUERY)
        text = profile.describe()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "rows=6+5->6" in text
        assert "combine=" in text
        payload = json.loads(json.dumps(profile.to_json()))
        assert payload["rows"] == 3
        assert payload["plan"]["children"][0]["children"][0]["rows_out"] == 6

    def test_expression_queries_profile_too(self, db):
        profile = Session(db).explain_analyze(
            db.rel("RA").union(db.rel("RB"))
        )
        assert profile.rows == 6
        assert "Union" in profile.root.label


class TestFlushProfile:
    def test_profiled_engine_annotates_deltas(self):
        engine = StreamEngine(
            table_ra().schema,
            name="R",
            # "vacuous" defers conflict handling (and thus re-folds) to
            # flush -- under the default "raise" policy a re-assertion
            # refolds eagerly at upsert and the flush has nothing to do.
            merger=TupleMerger(on_conflict="vacuous"),
            profile_batches=True,
        )
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        for etuple in table_rb():
            engine.upsert("tribune", etuple)
        # Re-assert the daily tuples: first arrivals fold on the upsert
        # fast path, re-assertions mark their entities for refold, so
        # this flush exercises the refold phase the profile times.
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        delta = engine.flush()
        profile = delta.profile
        assert isinstance(profile, FlushProfile)
        assert profile.events == 17
        assert profile.entities_refolded == len(engine.relation) == 6
        assert profile.combinations > 0
        assert profile.partitions >= 1
        assert set(profile.sources) == {"daily", "tribune"}
        for phase in (
            profile.refold_seconds,
            profile.materialize_seconds,
            profile.publish_seconds,
        ):
            assert 0.0 <= phase <= profile.total_seconds
        assert "refold=" in profile.describe()
        payload = json.loads(json.dumps(profile.to_json()))
        assert payload["events"] == 17

    def test_profiling_is_opt_in(self):
        engine = StreamEngine(table_ra().schema, name="R")
        for etuple in table_ra():
            engine.upsert("daily", etuple)
        assert engine.flush().profile is None
