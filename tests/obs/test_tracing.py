"""Structured tracing: the cost contract, nesting, shipping, sinks."""

from __future__ import annotations

import json

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    JsonlSink,
    SpanRecord,
    add_sink,
    capture,
    enabled,
    ingest,
    remove_sink,
    set_tracing,
    span,
    take_records,
    tracing_scope,
)


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    """Restore the flag and drain the buffer around every test."""
    previous = enabled()
    take_records()
    yield
    set_tracing(previous)
    take_records()


class TestCostContract:
    def test_disabled_span_is_the_shared_noop(self):
        set_tracing(False)
        first, second = span("a"), span("b", rows=3)
        assert first is second  # one singleton, no allocation
        with first as live:
            live.note(rows=9)  # discarded, not an error
        assert take_records() == []

    def test_scope_restores_the_previous_flag(self):
        set_tracing(False)
        with tracing_scope():
            assert enabled()
            with tracing_scope(False):
                assert not enabled()
            assert enabled()
        assert not enabled()


class TestNesting:
    def test_parent_child_links_and_order(self):
        with tracing_scope():
            with span("outer", layer="test") as outer:
                with span("inner") as inner:
                    inner.note(rows=3)
                outer.note(rows=6)
        records = take_records()
        assert [r.name for r in records] == ["inner", "outer"]
        inner_rec, outer_rec = records
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id is None
        assert inner_rec.attrs == {"rows": 3}
        assert outer_rec.attrs == {"layer": "test", "rows": 6}
        assert all(r.duration >= 0.0 for r in records)

    def test_siblings_share_a_parent(self):
        with tracing_scope():
            with span("parent") as parent:
                with span("first"):
                    pass
                with span("second"):
                    pass
        first, second, _ = take_records()
        assert first.parent_id == second.parent_id == parent.span_id


class TestWorkerShipping:
    def test_capture_diverts_from_buffer_and_sinks(self):
        seen = []

        class Sink:
            def emit(self, record):
                seen.append(record)

        sink = Sink()
        add_sink(sink)
        try:
            with tracing_scope():
                with capture() as shipped:
                    with span("worker.task"):
                        pass
        finally:
            remove_sink(sink)
        assert [r.name for r in shipped] == ["worker.task"]
        assert take_records() == []  # diverted, not buffered
        assert seen == []  # and kept away from the sinks

    def test_ingest_reparents_top_level_worker_spans(self):
        worker = [
            SpanRecord(101, 100, "child.inner", "W", 0.1, {"n": 1}),
            SpanRecord(100, None, "child.outer", "W", 0.2, {}),
        ]
        with tracing_scope():
            with span("exec.map") as dispatch:
                ingest(worker)
        records = {r.name: r for r in take_records()}
        # The worker-internal link survives; the worker's root hangs off
        # the dispatching span.
        assert records["child.inner"].parent_id == 100
        assert records["child.outer"].parent_id == dispatch.span_id
        assert records["child.inner"].attrs == {"n": 1}


class TestSinks:
    def test_jsonl_sink_appends_one_object_per_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        add_sink(sink)
        try:
            with tracing_scope():
                with span("a", step=1):
                    pass
                with span("b"):
                    pass
        finally:
            remove_sink(sink)
            sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert [line["name"] for line in lines] == ["a", "b"]
        assert lines[0]["attrs"] == {"step": 1}
        assert set(lines[0]) == {
            "span", "parent", "name", "thread", "duration", "attrs",
        }


class TestEnvironmentFlag:
    def test_env_values(self, monkeypatch):
        for raw, expect in (("", False), ("0", False), ("1", True),
                            ("yes", True)):
            monkeypatch.setenv("REPRO_TRACE", raw)
            assert tracing._env_enabled() is expect
        monkeypatch.delenv("REPRO_TRACE")
        assert tracing._env_enabled() is False
