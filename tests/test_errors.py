"""Tests for the exception hierarchy contract.

Callers rely on two guarantees: every library failure derives from
ReproError (one except clause catches all), and the layer-specific
subclass relationships hold (e.g. catching QueryError catches lex,
parse and plan failures alike).
"""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.MassFunctionError,
    errors.NotationError,
    errors.TotalConflictError,
    errors.TransformError,
    errors.DomainError,
    errors.SchemaError,
    errors.MembershipError,
    errors.RelationError,
    errors.PredicateError,
    errors.OperationError,
    errors.QueryError,
    errors.LexError,
    errors.ParseError,
    errors.PlanError,
    errors.IntegrationError,
    errors.EntityIdentificationError,
    errors.SerializationError,
    errors.CatalogError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_everything_is_a_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


def test_query_layer_hierarchy():
    assert issubclass(errors.LexError, errors.QueryError)
    assert issubclass(errors.ParseError, errors.QueryError)
    assert issubclass(errors.PlanError, errors.QueryError)


def test_integration_layer_hierarchy():
    assert issubclass(errors.EntityIdentificationError, errors.IntegrationError)


def test_lex_error_carries_position():
    error = errors.LexError("bad char", 7)
    assert error.position == 7
    assert "offset 7" in str(error)


def test_total_conflict_default_message():
    assert "kappa = 1" in str(errors.TotalConflictError())


def test_one_clause_catches_the_library():
    """The practical contract: a single except arm suffices."""
    from repro.ds import MassFunction

    with pytest.raises(errors.ReproError):
        MassFunction({"a": "1/2"})  # masses don't sum to one
    with pytest.raises(errors.ReproError):
        from repro.storage import Database

        Database().get("missing")
