"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import strategies as st

from repro.ds.frame import OMEGA
from repro.ds.mass import MassFunction
from repro.model.membership import TupleMembership

#: A small universe for generated evidence.
UNIVERSE = ("a", "b", "c", "d", "e")


@pytest.fixture
def ra():
    """The paper's R_A (fresh per test)."""
    from repro.datasets.restaurants import table_ra

    return table_ra()


@pytest.fixture
def rb():
    """The paper's R_B (fresh per test)."""
    from repro.datasets.restaurants import table_rb

    return table_rb()


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------


def focal_elements(universe=UNIVERSE):
    """Non-empty subsets of the universe, plus OMEGA."""
    subsets = st.sets(
        st.sampled_from(list(universe)), min_size=1, max_size=len(universe)
    ).map(frozenset)
    return st.one_of(subsets, st.just(OMEGA))


@st.composite
def mass_functions(draw, universe=UNIVERSE, max_focal=4):
    """Random exact mass functions over the universe."""
    n_focal = draw(st.integers(min_value=1, max_value=max_focal))
    elements = draw(
        st.lists(
            focal_elements(universe),
            min_size=n_focal,
            max_size=n_focal,
            unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=12),
            min_size=n_focal,
            max_size=n_focal,
        )
    )
    total = sum(weights)
    return MassFunction(
        {element: Fraction(w, total) for element, w in zip(elements, weights)}
    )


@st.composite
def memberships(draw):
    """Random exact (sn, sp) pairs with 0 <= sn <= sp <= 1."""
    denominator = draw(st.integers(min_value=1, max_value=12))
    sn_numerator = draw(st.integers(min_value=0, max_value=denominator))
    sp_numerator = draw(st.integers(min_value=sn_numerator, max_value=denominator))
    return TupleMembership(
        Fraction(sn_numerator, denominator), Fraction(sp_numerator, denominator)
    )


@st.composite
def supported_memberships(draw):
    """Memberships with sn > 0 (CWA_ER-conformant)."""
    denominator = draw(st.integers(min_value=2, max_value=12))
    sn_numerator = draw(st.integers(min_value=1, max_value=denominator))
    sp_numerator = draw(st.integers(min_value=sn_numerator, max_value=denominator))
    return TupleMembership(
        Fraction(sn_numerator, denominator), Fraction(sp_numerator, denominator)
    )
