"""Smoke tests: every example script must run to completion and print
its headline results."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart.py", capsys)
    assert "Integrated (Table 4 of the paper)" in output
    assert "0.655" in output  # garden's integrated speciality mass
    assert "ashiana" in output


def test_restaurant_integration(capsys):
    output = run_example("restaurant_integration.py", capsys)
    assert "Conflict report:" in output
    assert "Integrated relation" in output
    assert "Sichuan candidates" in output


def test_news_agencies_sql(capsys):
    output = run_example("news_agencies_sql.py", capsys)
    assert "Table 4" in output
    assert "EXPLAIN" in output
    assert "Scan R" in output


def test_conflict_study(capsys):
    output = run_example("conflict_study.py", capsys)
    assert "mean kappa" in output
    # The sweep prints six conflict levels.
    assert output.count("|") >= 6 * 6


def test_federation(capsys):
    output = run_example("federation.py", capsys)
    assert "Three-way federated relation" in output
    assert "Decision view" in output
    assert "(+) campus:" in output
