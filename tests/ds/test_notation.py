"""Tests for the paper's evidence-set notation (parse and format)."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.errors import NotationError
from repro.ds.frame import OMEGA, FrameOfDiscernment
from repro.ds.mass import MassFunction
from repro.ds.notation import (
    format_evidence,
    format_focal_element,
    format_mass_value,
    parse_atom,
    parse_evidence,
)
from tests.conftest import mass_functions


class TestParse:
    def test_paper_style_evidence(self):
        m = parse_evidence("[si^0.5, hu^0.25, Ω^0.25]")
        assert m[{"si"}] == Fraction(1, 2)
        assert m[{"hu"}] == Fraction(1, 4)
        assert m[OMEGA] == Fraction(1, 4)

    def test_set_focal_elements(self):
        m = parse_evidence("[d31^0.5, {d35,d36}^0.5]")
        assert m[{"d35", "d36"}] == Fraction(1, 2)

    def test_rational_masses(self):
        m = parse_evidence("[cantonese^1/2, {hunan,sichuan}^1/3, Ω^1/6]")
        assert m[{"hunan", "sichuan"}] == Fraction(1, 3)

    def test_omega_spellings(self):
        for spelling in ("Ω", "Θ", "omega", "theta", "*"):
            m = parse_evidence(f"[a^0.5, {spelling}^0.5]")
            assert m[OMEGA] == Fraction(1, 2)

    def test_numeric_atoms(self):
        m = parse_evidence("[{1,4}^0.6, {2,6}^0.4]")
        assert m[{1, 4}] == Fraction(3, 5)

    def test_decimal_atoms_parse_exact(self):
        m = parse_evidence("[{1.5}^1]")
        assert m[{Fraction(3, 2)}] == 1

    def test_quoted_atoms(self):
        m = parse_evidence('["hello world"^0.5, \'x,y\'^0.5]')
        assert m[{"hello world"}] == Fraction(1, 2)
        assert m[{"x,y"}] == Fraction(1, 2)

    def test_whitespace_insensitive(self):
        assert parse_evidence("[a^0.5,b^0.5]") == parse_evidence("[ a ^ 0.5 , b ^ 0.5 ]")

    def test_duplicate_elements_accumulate(self):
        m = parse_evidence("[a^0.25, a^0.25, b^0.5]")
        assert m[{"a"}] == Fraction(1, 2)

    def test_frame_attachment(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        m = parse_evidence("[a^1]", frame)
        assert m.frame == frame

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "[]",
            "[a^]",
            "[a 0.5]",
            "[a^0.5",
            "a^0.5]",
            "[a^0.5] trailing",
            "[^0.5]",
            "[a^x]",
            "[{a,}^1]",
            "[a^0.5, b^0.4]",  # masses do not sum to 1
        ],
    )
    def test_malformed_inputs_rejected(self, bad):
        with pytest.raises((NotationError, Exception)):
            parse_evidence(bad)


class TestParseAtom:
    def test_integer(self):
        assert parse_atom("42") == 42

    def test_decimal_is_exact_fraction(self):
        assert parse_atom("0.5") == Fraction(1, 2)

    def test_rational(self):
        assert parse_atom("2/3") == Fraction(2, 3)

    def test_bare_word(self):
        assert parse_atom("cantonese") == "cantonese"

    def test_quoted_string(self):
        assert parse_atom('"a b"') == "a b"


class TestFormat:
    def test_simple(self):
        m = MassFunction({"si": 1})
        assert format_evidence(m) == "[si^1]"

    def test_paper_ordering_sets_after_singletons_omega_last(self):
        m = MassFunction({OMEGA: "1/4", ("d35", "d36"): "1/4", "d31": "1/2"})
        assert format_evidence(m) == "[d31^0.5, {d35,d36}^0.25, Ω^0.25]"

    def test_decimal_style_rounds(self):
        m = MassFunction({"si": "19/29", "hu": "8/29", OMEGA: "2/29"})
        text = format_evidence(m, style="decimal", digits=3)
        assert "si^0.655" in text
        assert "hu^0.276" in text
        assert "Ω^0.069" in text

    def test_fraction_style(self):
        m = MassFunction({"a": "1/3", "b": "2/3"})
        assert format_evidence(m, style="fraction") == "[a^1/3, b^2/3]"

    def test_auto_style_uses_short_decimals(self):
        m = MassFunction({"a": "1/4", "b": "3/4"})
        assert format_evidence(m) == "[a^0.25, b^0.75]"

    def test_mass_value_styles(self):
        assert format_mass_value(Fraction(1, 3)) == "1/3"
        assert format_mass_value(Fraction(1, 2)) == "0.5"
        assert format_mass_value(Fraction(1)) == "1"
        assert format_mass_value(0.12345, digits=3) == "0.123"
        assert format_mass_value(Fraction(1, 3), style="decimal") == "0.333"

    def test_unknown_style_rejected(self):
        with pytest.raises(NotationError):
            format_mass_value(Fraction(1), style="roman")

    def test_focal_element_rendering(self):
        assert format_focal_element(OMEGA) == "Ω"
        assert format_focal_element(frozenset({"b", "a"})) == "{a,b}"
        assert format_focal_element(frozenset({"x"})) == "x"

    def test_quoting_when_needed(self):
        assert format_focal_element(frozenset({"a b"})) == '"a b"'

    def test_numeric_looking_strings_quoted(self):
        """The *string* "1/3" must not round-trip as Fraction(1, 3)."""
        assert format_focal_element(frozenset({"1/3"})) == '"1/3"'
        assert format_focal_element(frozenset({"42"})) == '"42"'
        m = MassFunction({"1/3": 1})
        assert parse_evidence(format_evidence(m)) == m

    def test_omega_spelling_strings_quoted(self):
        m = MassFunction({"omega": 1})  # the string, not the frame
        round_tripped = parse_evidence(format_evidence(m))
        assert round_tripped == m
        assert round_tripped[{"omega"}] == 1


class TestRoundTrip:
    def test_paper_tables_round_trip(self):
        texts = [
            "[si^0.5, hu^0.25, Ω^0.25]",
            "[d31^0.5, {d35,d36}^0.5]",
            "[mu^0.8, ta^0.2]",
            "[d6^1/3, d7^1/3, d25^1/3]",
        ]
        for text in texts:
            m = parse_evidence(text)
            assert parse_evidence(format_evidence(m, style="fraction")) == m


@given(m=mass_functions())
def test_format_parse_round_trip(m):
    assert parse_evidence(format_evidence(m, style="fraction")) == m
