"""The compact evidence kernel: equivalence with the frozenset path.

The kernel (:mod:`repro.ds.kernel`) is a pure representation change --
interned frames, bitmask focal elements -- so every operation must
return *identical* results to the symbolic frozenset path: exact
Fractions exactly equal, floats bit-for-bit equal (both paths visit
pairs in the canonical focal order, so even round-off matches).  The
Hypothesis properties here drive random frames, random mass functions
(including OMEGA focal elements and total-conflict pairs) through
combine / conjunctive / disjunctive / discount / bel / pls on both
paths and assert equality.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.ds import (
    MassFunction,
    OMEGA,
    combine,
    combine_with_conflict,
    compile_mass_function,
    conjunctive,
    disjunctive,
    discount,
    intern_frame,
    kernel_disabled,
    kernel_enabled,
    kernel_stats,
)
from repro.ds.belief import belief, commonality, plausibility, uncertainty_interval
from repro.ds.frame import FrameOfDiscernment
from repro.ds.kernel import CompiledMass, InternedFrame
from repro.errors import DomainError, MassFunctionError, TotalConflictError


# -- strategies ---------------------------------------------------------------

VALUE_POOL = [f"v{i:02d}" for i in range(16)]


@st.composite
def frames(draw):
    size = draw(st.integers(min_value=2, max_value=9))
    return FrameOfDiscernment("hyp", VALUE_POOL[:size])


@st.composite
def mass_functions(draw, frame, exact=True):
    """A random mass function over *frame*, possibly with OMEGA focal."""
    values = sorted(frame.values)
    n_focal = draw(st.integers(min_value=1, max_value=5))
    elements = []
    if draw(st.booleans()):
        elements.append(OMEGA)
    while len(elements) < n_focal:
        members = draw(
            st.frozensets(
                st.sampled_from(values), min_size=1, max_size=len(values)
            )
        )
        if members not in elements:
            elements.append(members)
    weights = [
        draw(st.integers(min_value=1, max_value=9)) for _ in elements
    ]
    total = sum(weights)
    if exact:
        masses = {e: Fraction(w, total) for e, w in zip(elements, weights)}
    else:
        masses = {e: w / total for e, w in zip(elements, weights)}
    return MassFunction(masses, frame)


@st.composite
def framed_pairs(draw, exact=True):
    frame = draw(frames())
    return (
        draw(mass_functions(frame, exact=exact)),
        draw(mass_functions(frame, exact=exact)),
    )


def both_paths(operation):
    """Run *operation* on the kernel path and the frozenset path.

    Fresh inputs are built by each call of *operation* via the factory
    argument pattern below, so no compiled state leaks between runs;
    exceptions are captured so raising behaviour can be compared too.
    """

    def run():
        try:
            return ("ok", operation())
        except TotalConflictError:
            return ("total-conflict", None)
        except MassFunctionError as exc:
            return ("mass-error", str(exc))

    kernel_result = run()
    with kernel_disabled():
        fallback_result = run()
    return kernel_result, fallback_result


def assert_same_mass(a: MassFunction, b: MassFunction):
    assert dict(a.items()) == dict(b.items())
    # Exactness class must match too: a Fraction must not degrade.
    for (_, va), (_, vb) in zip(a.items(), b.items()):
        assert type(va) is type(vb)


# -- equivalence properties ---------------------------------------------------


class TestPathEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(framed_pairs(exact=True))
    def test_combine_exact(self, pair):
        m1, m2 = pair
        kernel_out, fallback_out = both_paths(lambda: combine(m1, m2))
        assert kernel_out[0] == fallback_out[0]
        if kernel_out[0] == "ok":
            assert kernel_out[1].is_compiled
            assert_same_mass(kernel_out[1], fallback_out[1])

    @settings(max_examples=60, deadline=None)
    @given(framed_pairs(exact=False))
    def test_combine_float_bit_exact(self, pair):
        """Floats too: both paths add products in the same order."""
        m1, m2 = pair
        kernel_out, fallback_out = both_paths(lambda: combine(m1, m2))
        assert kernel_out[0] == fallback_out[0]
        if kernel_out[0] == "ok":
            assert_same_mass(kernel_out[1], fallback_out[1])

    @settings(max_examples=50, deadline=None)
    @given(framed_pairs(exact=True))
    def test_conjunctive(self, pair):
        m1, m2 = pair
        (_, (pooled_k, kappa_k)), (_, (pooled_f, kappa_f)) = both_paths(
            lambda: conjunctive(m1, m2)
        )
        assert pooled_k == pooled_f
        assert kappa_k == kappa_f

    @settings(max_examples=50, deadline=None)
    @given(framed_pairs(exact=True))
    def test_disjunctive(self, pair):
        m1, m2 = pair
        kernel_out, fallback_out = both_paths(lambda: disjunctive(m1, m2))
        assert_same_mass(kernel_out[1], fallback_out[1])

    @settings(max_examples=50, deadline=None)
    @given(
        framed_pairs(exact=True),
        st.integers(min_value=0, max_value=10),
    )
    def test_discount(self, pair, tenths):
        m, _ = pair
        reliability = Fraction(tenths, 10)
        kernel_out, fallback_out = both_paths(
            lambda: discount(m, reliability)
        )
        assert_same_mass(kernel_out[1], fallback_out[1])

    @settings(max_examples=60, deadline=None)
    @given(frames().flatmap(
        lambda frame: st.tuples(
            mass_functions(frame),
            st.one_of(
                st.just(OMEGA),
                st.frozensets(
                    st.sampled_from(sorted(frame.values)),
                    min_size=1,
                    max_size=len(frame.values),
                ),
            ),
        )
    ))
    def test_bel_pls_commonality(self, case):
        m, query = case
        for measure in (belief, plausibility, commonality):
            kernel_out, fallback_out = both_paths(lambda: measure(m, query))
            assert kernel_out == fallback_out
        kernel_out, fallback_out = both_paths(
            lambda: uncertainty_interval(m, query)
        )
        assert kernel_out == fallback_out

    def test_total_conflict_both_paths(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        m1 = MassFunction({"a": 1}, frame)
        m2 = MassFunction({"b": 1}, frame)
        kernel_out, fallback_out = both_paths(lambda: combine(m1, m2))
        assert kernel_out[0] == fallback_out[0] == "total-conflict"
        combined, kappa = combine_with_conflict(m1, m2)
        assert combined is None and kappa == 1

    def test_omega_only_is_identity(self):
        frame = FrameOfDiscernment("f", ["a", "b", "c"])
        vacuous = MassFunction({OMEGA: 1}, frame)
        m = MassFunction({"a": "1/2", OMEGA: "1/2"}, frame)
        combined = combine(m, vacuous)
        assert_same_mass(combined, m)

    @settings(max_examples=30, deadline=None)
    @given(framed_pairs(exact=True), framed_pairs(exact=True))
    def test_chained_combination_stays_compiled(self, pair_a, pair_b):
        """A fold over compiled states equals the frozenset fold."""
        sources = [*pair_a, *pair_b]

        def fold():
            result = sources[0]
            for m in sources[1:]:
                result = combine(result, m)
            return result

        kernel_out, fallback_out = both_paths(fold)
        assert kernel_out[0] == fallback_out[0]
        if kernel_out[0] == "ok":
            assert kernel_out[1].is_compiled
            assert_same_mass(kernel_out[1], fallback_out[1])


# -- compilation mechanics ----------------------------------------------------


class TestCompilation:
    def test_lazy_compile_on_demand(self):
        frame = FrameOfDiscernment("f", ["a", "b", "c"])
        m = MassFunction({"a": "1/2", OMEGA: "1/2"}, frame)
        assert not m.is_compiled
        compiled = m.compiled()
        assert m.is_compiled and isinstance(compiled, CompiledMass)
        assert m.compiled() is compiled  # cached

    def test_no_frame_never_compiles(self):
        m = MassFunction({"a": "1/2", OMEGA: "1/2"})
        assert m.compiled() is None
        assert not m.is_compiled

    def test_interning_shares_bit_assignment(self):
        f1 = FrameOfDiscernment("f", ["a", "b", "c"])
        f2 = FrameOfDiscernment("f", ["c", "b", "a"])
        assert intern_frame(f1) is intern_frame(f2)

    def test_masks_round_trip(self):
        frame = FrameOfDiscernment("f", ["a", "b", "c", "d"])
        interned = intern_frame(frame)
        assert isinstance(interned, InternedFrame)
        for element in (frozenset({"a"}), frozenset({"b", "d"}), OMEGA):
            mask = interned.mask_of(element)
            assert interned.element_of(mask) == element
        # The full concrete set canonicalizes to OMEGA, as frames do.
        assert interned.mask_of(frame.values) == interned.omega_mask
        assert interned.element_of(interned.omega_mask) is OMEGA

    def test_mask_of_rejects_out_of_frame_values(self):
        interned = intern_frame(FrameOfDiscernment("f", ["a", "b"]))
        with pytest.raises(DomainError):
            interned.mask_of(frozenset({"zzz"}))

    def test_compiled_result_is_lazy_but_faithful(self):
        frame = FrameOfDiscernment("f", ["a", "b", "c"])
        m1 = MassFunction({"a": "1/2", ("a", "b"): "1/4", OMEGA: "1/4"}, frame)
        m2 = MassFunction({("a", "c"): "2/3", OMEGA: "1/3"}, frame)
        combined = combine(m1, m2)
        assert combined.is_compiled
        assert combined.frame == frame
        assert combined[{"a"}] == Fraction(2, 3)
        assert sum(value for _, value in combined.items()) == 1

    def test_compilation_reuses_mass_function_coercion(self):
        """Satellite: no re-implemented coercion -- strings, ints and
        Fractions flow through coerce_mass_value before compilation."""
        frame = FrameOfDiscernment("f", ["a", "b"])
        m = MassFunction({"a": "1/3", "b": Fraction(1, 3), ("a", "b"): "1/3"}, frame)
        compiled = compile_mass_function(m)
        assert all(isinstance(v, Fraction) for v in compiled.values)
        assert compiled.is_exact()

    def test_mixed_fraction_float_masses_compile_and_combine(self):
        """Satellite regression: mixed Fraction/float inputs behave
        identically on both paths (tolerance from FLOAT_SUM_TOLERANCE)."""
        frame = FrameOfDiscernment("f", ["a", "b", "c"])
        mixed = MassFunction(
            {"a": Fraction(1, 2), ("b", "c"): 0.25, OMEGA: 0.25}, frame
        )
        other = MassFunction({"a": 0.5, OMEGA: Fraction(1, 2)}, frame)
        kernel_out, fallback_out = both_paths(lambda: combine(mixed, other))
        assert kernel_out[0] == fallback_out[0] == "ok"
        assert_same_mass(kernel_out[1], fallback_out[1])

    def test_float_sum_tolerance_shared_with_kernel(self):
        """A drifted-but-in-tolerance float total passes both paths; a
        genuinely broken one fails both with the same error."""
        frame = FrameOfDiscernment("f", ["a", "b"])
        within = MassFunction({"a": 0.5 + 4e-10, OMEGA: 0.5}, frame)
        assert within.compiled() is not None
        with pytest.raises(MassFunctionError):
            MassFunction({"a": 0.5, OMEGA: 0.4}, frame)

    def test_pickle_drops_compiled_cache(self):
        import pickle

        frame = FrameOfDiscernment("f", ["a", "b"])
        m = MassFunction({"a": "1/2", OMEGA: "1/2"}, frame)
        m.compiled()
        clone = pickle.loads(pickle.dumps(m))
        assert clone == m
        assert not clone.is_compiled
        assert clone.compiled() is not None

    def test_kernel_disabled_context(self):
        assert kernel_enabled()
        with kernel_disabled():
            assert not kernel_enabled()
        assert kernel_enabled()

    def test_stats_count_paths(self):
        stats = kernel_stats()
        frame = FrameOfDiscernment("f", ["a", "b"])
        framed = MassFunction({"a": "1/2", OMEGA: "1/2"}, frame)
        bare = MassFunction({"a": "1/2", OMEGA: "1/2"})
        before = stats.snapshot()
        combine(framed, framed)
        combine(bare, bare)
        delta = stats.since(before)
        assert delta.kernel_combinations == 1
        assert delta.fallback_combinations == 1
        assert "kernel" in stats.summary()


class TestStatsConcurrency:
    """The counters must stay exact under concurrent bumps.

    The executor layer runs combination/compilation inside pool
    threads, so ``STATS`` is bumped concurrently; a plain ``+= 1``
    would lose updates under contention.  Eight threads hammer
    :func:`compile_mass_function` through a start barrier and the
    aggregate must come out exact, not merely close.
    """

    THREADS = 8
    ROUNDS = 250

    def test_concurrent_compilations_counted_exactly(self):
        import threading

        stats = kernel_stats()
        frame = FrameOfDiscernment("conc", ["a", "b", "c"])
        before = stats.snapshot()
        barrier = threading.Barrier(self.THREADS)
        failures = []

        def hammer():
            try:
                barrier.wait()
                for _ in range(self.ROUNDS):
                    m = MassFunction({"a": "1/2", OMEGA: "1/2"}, frame)
                    compile_mass_function(m)
            except Exception as exc:  # pragma: no cover - diagnostic aid
                failures.append(exc)

        workers = [
            threading.Thread(target=hammer) for _ in range(self.THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert not failures
        delta = stats.since(before)
        assert delta.compilations == self.THREADS * self.ROUNDS
