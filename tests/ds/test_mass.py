"""Tests for mass functions (basic probability assignments)."""

from fractions import Fraction

import pytest

from repro.errors import MassFunctionError
from repro.ds.frame import OMEGA, FrameOfDiscernment
from repro.ds.mass import (
    MassFunction,
    coerce_focal_element,
    coerce_mass_value,
)


class TestCoercion:
    def test_int_becomes_fraction(self):
        assert coerce_mass_value(1) == Fraction(1)
        assert isinstance(coerce_mass_value(1), Fraction)

    def test_float_stays_float(self):
        assert isinstance(coerce_mass_value(0.5), float)

    def test_decimal_string_is_exact(self):
        assert coerce_mass_value("0.25") == Fraction(1, 4)

    def test_rational_string(self):
        assert coerce_mass_value("1/3") == Fraction(1, 3)

    def test_bool_rejected(self):
        with pytest.raises(MassFunctionError):
            coerce_mass_value(True)

    def test_garbage_string_rejected(self):
        with pytest.raises(MassFunctionError):
            coerce_mass_value("one half")

    def test_scalar_becomes_singleton(self):
        assert coerce_focal_element("ca") == frozenset({"ca"})
        assert coerce_focal_element(5) == frozenset({5})

    def test_string_is_not_iterated(self):
        assert coerce_focal_element("hu") == frozenset({"hu"})

    def test_iterable_becomes_frozenset(self):
        assert coerce_focal_element(["a", "b"]) == frozenset({"a", "b"})
        assert coerce_focal_element(("a",)) == frozenset({"a"})

    def test_omega_passthrough(self):
        assert coerce_focal_element(OMEGA) is OMEGA

    def test_empty_set_rejected(self):
        with pytest.raises(MassFunctionError, match="empty set"):
            coerce_focal_element(set())


class TestConstruction:
    def test_paper_section21_example(self):
        m = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
        assert m[{"ca"}] == Fraction(1, 2)
        assert m[{"hu", "si"}] == Fraction(1, 3)
        assert m[OMEGA] == Fraction(1, 6)

    def test_nonfocal_mass_is_zero(self):
        m = MassFunction({"ca": 1})
        assert m[{"hu"}] == 0
        assert m[{"ca", "hu"}] == 0  # mass is per-subset, not monotone

    def test_masses_must_sum_to_one(self):
        with pytest.raises(MassFunctionError, match="sum to 1"):
            MassFunction({"a": "1/2", "b": "1/4"})

    def test_negative_mass_rejected(self):
        with pytest.raises(MassFunctionError, match="negative"):
            MassFunction({"a": "3/2", "b": "-1/2"})

    def test_zero_masses_dropped(self):
        m = MassFunction({"a": 1, "b": 0})
        assert len(m) == 1
        assert {"b"} not in m

    def test_empty_mapping_rejected(self):
        with pytest.raises(MassFunctionError):
            MassFunction({})

    def test_duplicate_elements_accumulate(self):
        m = MassFunction({("a",): "1/2", frozenset({"a"}): "1/4", "b": "1/4"})
        assert m[{"a"}] == Fraction(3, 4)

    def test_float_masses_with_tolerance(self):
        m = MassFunction({"a": 0.1, "b": 0.2, "c": 0.7})
        assert m[{"a"}] == pytest.approx(0.1)

    def test_float_sum_violation_rejected(self):
        with pytest.raises(MassFunctionError):
            MassFunction({"a": 0.5, "b": 0.4})

    def test_frame_canonicalizes_full_set(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        m = MassFunction({frozenset({"x", "y"}): 1}, frame)
        assert m[OMEGA] == 1
        assert m.is_vacuous()

    def test_frame_rejects_foreign_values(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        with pytest.raises(Exception):
            MassFunction({"z": 1}, frame)

    def test_exact_constructor_converts_floats(self):
        m = MassFunction.exact({"a": 0.25, "b": 0.75})
        assert m[{"a"}] == Fraction(1, 4)
        assert m.is_exact()


class TestFromCounts:
    def test_vote_shares_paper_example(self):
        # Section 1.2: best-dish votes 3/2/1 -> masses 0.5 / 0.33 / 0.17.
        m = MassFunction.from_counts({"d1": 3, "d2": 2, "d3": 1})
        assert m[{"d1"}] == Fraction(1, 2)
        assert m[{"d2"}] == Fraction(1, 3)
        assert m[{"d3"}] == Fraction(1, 6)

    def test_abstentions_become_omega(self):
        m = MassFunction.from_counts({"ex": 2, "gd": 3, OMEGA: 1})
        assert m[OMEGA] == Fraction(1, 6)

    def test_zero_total_rejected(self):
        with pytest.raises(MassFunctionError):
            MassFunction.from_counts({"a": 0})

    def test_negative_count_rejected(self):
        with pytest.raises(MassFunctionError):
            MassFunction.from_counts({"a": -1, "b": 2})


class TestClassification:
    def test_definite(self):
        m = MassFunction.definite("ex")
        assert m.is_definite()
        assert m.definite_value() == "ex"
        assert not m.is_vacuous()

    def test_vacuous(self):
        m = MassFunction.vacuous()
        assert m.is_vacuous()
        assert not m.is_definite()
        assert m.ignorance() == 1

    def test_categorical_set_not_definite(self):
        m = MassFunction.categorical({"a", "b"})
        assert not m.is_definite()
        with pytest.raises(MassFunctionError):
            m.definite_value()

    def test_bayesian(self):
        assert MassFunction({"a": "1/2", "b": "1/2"}).is_bayesian()
        assert not MassFunction({("a", "b"): 1}).is_bayesian()
        assert not MassFunction({OMEGA: 1}).is_bayesian()

    def test_consonant(self):
        nested = MassFunction({"a": "1/2", ("a", "b"): "1/4", OMEGA: "1/4"})
        assert nested.is_consonant()
        crossed = MassFunction({("a", "b"): "1/2", ("b", "c"): "1/2"})
        assert not crossed.is_consonant()

    def test_core(self):
        m = MassFunction({"a": "1/2", ("b", "c"): "1/2"})
        assert m.core() == frozenset({"a", "b", "c"})

    def test_core_with_omega_unframed(self):
        m = MassFunction({"a": "1/2", OMEGA: "1/2"})
        assert m.core() is OMEGA

    def test_core_with_omega_framed(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        m = MassFunction({"a": "1/2", OMEGA: "1/2"}, frame)
        assert m.core() == frozenset({"a", "b"})


class TestConversions:
    def test_to_float_and_back(self):
        m = MassFunction({"a": "1/4", "b": "3/4"})
        floated = m.to_float()
        assert not floated.is_exact()
        assert floated.to_exact() == m

    def test_with_frame(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        m = MassFunction({"a": "1/2", "b": "1/2"}).with_frame(frame)
        assert m.frame == frame

    def test_map_elements_one_to_one(self):
        m = MassFunction({"x": "1/2", "y": "1/2"})
        mapped = m.map_elements(lambda v: v.upper())
        assert mapped[{"X"}] == Fraction(1, 2)

    def test_map_elements_merging_collisions(self):
        m = MassFunction({"x": "1/2", "y": "1/2"})
        mapped = m.map_elements(lambda v: "z")
        assert mapped[{"z"}] == 1

    def test_map_elements_one_to_many_grows_focal(self):
        m = MassFunction({"chinese": 1})
        mapped = m.map_elements(lambda v: {"hu", "si", "ca"})
        assert mapped[{"hu", "si", "ca"}] == 1

    def test_map_elements_keeps_omega(self):
        m = MassFunction({"x": "1/2", OMEGA: "1/2"})
        mapped = m.map_elements(lambda v: v)
        assert mapped[OMEGA] == Fraction(1, 2)


class TestEqualityAndOrdering:
    def test_equality_across_representations(self):
        m1 = MassFunction({"a": "1/2", "b": "1/2"})
        m2 = MassFunction({frozenset({"b"}): Fraction(1, 2), ("a",): "0.5"})
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_omega_resolution_in_equality(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        framed = MassFunction({OMEGA: 1}, frame)
        concrete = MassFunction({frozenset({"a", "b"}): 1})
        assert framed == concrete

    def test_focal_elements_deterministic_order(self):
        m = MassFunction({"b": "1/4", ("a", "c"): "1/4", "a": "1/4", OMEGA: "1/4"})
        elements = m.focal_elements()
        # singletons first (by size), OMEGA last
        assert elements[-1] is OMEGA
        assert elements[0] == frozenset({"a"})

    def test_repr_is_bracket_notation(self):
        m = MassFunction({"a": 1})
        assert "[a^1]" in repr(m)
