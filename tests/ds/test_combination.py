"""Tests for Dempster's rule of combination."""

import math
from fractions import Fraction

import pytest
from hypothesis import given

from repro.errors import MassFunctionError, TotalConflictError
from repro.ds.frame import OMEGA, FrameOfDiscernment
from repro.ds.mass import MassFunction
from repro.ds.combination import (
    combine,
    combine_all,
    conflict,
    conjunctive,
    disjunctive,
    intersect_focal,
    union_focal,
    weight_of_conflict,
)
from tests.conftest import mass_functions


@pytest.fixture
def m1():
    return MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})


@pytest.fixture
def m2():
    return MassFunction({("ca", "hu"): "1/2", "hu": "1/4", OMEGA: "1/4"})


class TestFocalSetOps:
    def test_intersections(self):
        assert intersect_focal(frozenset({"a", "b"}), frozenset({"b", "c"})) == (
            frozenset({"b"})
        )
        assert intersect_focal(frozenset({"a"}), frozenset({"b"})) is None

    def test_omega_is_identity_for_intersection(self):
        assert intersect_focal(OMEGA, frozenset({"a"})) == frozenset({"a"})
        assert intersect_focal(frozenset({"a"}), OMEGA) == frozenset({"a"})
        assert intersect_focal(OMEGA, OMEGA) is OMEGA

    def test_unions(self):
        assert union_focal(frozenset({"a"}), frozenset({"b"})) == frozenset({"a", "b"})
        assert union_focal(OMEGA, frozenset({"a"})) is OMEGA


class TestPaperSection22:
    """The worked example of Section 2.2 -- exact fractions."""

    def test_conflict_is_one_eighth(self, m1, m2):
        assert conflict(m1, m2) == Fraction(1, 8)

    def test_combined_masses(self, m1, m2):
        m12 = combine(m1, m2)
        assert m12[{"ca"}] == Fraction(3, 7)
        assert m12[{"hu"}] == Fraction(1, 3)
        assert m12[{"ca", "hu"}] == Fraction(2, 21)
        assert m12[{"hu", "si"}] == Fraction(2, 21)
        assert m12[OMEGA] == Fraction(1, 21)

    def test_combined_masses_sum_to_one(self, m1, m2):
        m12 = combine(m1, m2)
        assert sum(value for _, value in m12.items()) == 1

    def test_conjunctive_returns_unnormalized(self, m1, m2):
        pooled, kappa = conjunctive(m1, m2)
        assert kappa == Fraction(1, 8)
        assert pooled[frozenset({"ca"})] == Fraction(3, 8)
        assert sum(pooled.values()) == Fraction(7, 8)

    def test_hunan_gained_cantonese_lost(self, m1, m2):
        """The paper notes {hunan} gains mass (merging larger focal
        elements) while {cantonese} loses (conflict with {hunan})."""
        m12 = combine(m1, m2)
        assert m12[{"hu"}] > m2[{"hu"}]
        assert m12[{"ca"}] < m1[{"ca"}]


class TestCombineProperties:
    def test_commutative(self, m1, m2):
        assert combine(m1, m2) == combine(m2, m1)

    def test_vacuous_is_identity(self, m1):
        assert combine(m1, MassFunction.vacuous()) == m1

    def test_definite_agreement(self):
        a = MassFunction.definite("x")
        b = MassFunction.definite("x")
        assert combine(a, b) == a

    def test_total_conflict_raises(self):
        a = MassFunction.definite("x")
        b = MassFunction.definite("y")
        with pytest.raises(TotalConflictError):
            combine(a, b)

    def test_frames_must_agree(self):
        fa = FrameOfDiscernment("a", ["x", "y"])
        fb = FrameOfDiscernment("b", ["x", "y"])
        with pytest.raises(MassFunctionError, match="different frames"):
            combine(MassFunction({"x": 1}, fa), MassFunction({"x": 1}, fb))

    def test_frame_propagates(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        framed = MassFunction({"x": 1}, frame)
        unframed = MassFunction({"x": "1/2", "y": "1/2"})
        assert combine(framed, unframed).frame == frame

    def test_combine_all_requires_input(self):
        with pytest.raises(MassFunctionError):
            combine_all([])

    def test_combine_all_single(self, m1):
        assert combine_all([m1]) == m1

    def test_combine_all_folds(self, m1, m2):
        assert combine_all([m1, m2]) == combine(m1, m2)


class TestWeightOfConflict:
    def test_zero_without_conflict(self):
        a = MassFunction.definite("x")
        assert weight_of_conflict(a, a) == 0.0

    def test_infinite_on_total_conflict(self):
        a = MassFunction.definite("x")
        b = MassFunction.definite("y")
        assert weight_of_conflict(a, b) == math.inf

    def test_matches_log_formula(self, m1, m2):
        expected = -math.log(1 - 1 / 8)
        assert weight_of_conflict(m1, m2) == pytest.approx(expected)


class TestDisjunctive:
    def test_union_of_definite_values(self):
        a = MassFunction.definite("x")
        b = MassFunction.definite("y")
        d = disjunctive(a, b)
        assert d[{"x", "y"}] == 1

    def test_never_conflicts(self, m1):
        b = MassFunction.definite("am")
        d = disjunctive(m1, b)
        assert sum(value for _, value in d.items()) == 1

    def test_commutative(self, m1, m2):
        assert disjunctive(m1, m2) == disjunctive(m2, m1)


# ---------------------------------------------------------------------------
# Property-based checks
# ---------------------------------------------------------------------------


def _combinable(a, b):
    try:
        return combine(a, b)
    except TotalConflictError:
        return None


@given(a=mass_functions(), b=mass_functions())
def test_combination_commutative(a, b):
    left = _combinable(a, b)
    right = _combinable(b, a)
    assert left == right


@given(a=mass_functions(), b=mass_functions(), c=mass_functions())
def test_combination_associative(a, b, c):
    """(a + b) + c == a + (b + c), exactly, whenever defined."""
    try:
        left = combine(combine(a, b), c)
    except TotalConflictError:
        left = None
    try:
        right = combine(a, combine(b, c))
    except TotalConflictError:
        right = None
    # Total conflict can surface at different fold points, but when both
    # parses succeed the results must agree exactly.
    if left is not None and right is not None:
        assert left == right


@given(m=mass_functions())
def test_vacuous_identity_property(m):
    assert combine(m, MassFunction.vacuous()) == m


@given(a=mass_functions(), b=mass_functions())
def test_combination_never_increases_ignorance(a, b):
    """m12(OMEGA) <= min(m1(OMEGA), m2(OMEGA)): pooling evidence cannot
    create ignorance."""
    combined = _combinable(a, b)
    if combined is None:
        return
    assert combined.ignorance() <= a.ignorance()
    assert combined.ignorance() <= b.ignorance()


@given(a=mass_functions(), b=mass_functions())
def test_combined_masses_normalized(a, b):
    combined = _combinable(a, b)
    if combined is None:
        return
    assert sum(value for _, value in combined.items()) == 1
