"""Tests for the DS extensions: Moebius inversion, uncertainty measures,
and Dempster conditioning."""

import math
from fractions import Fraction

import pytest
from hypothesis import given

from repro.errors import MassFunctionError, TotalConflictError
from repro.ds.frame import OMEGA, FrameOfDiscernment
from repro.ds.mass import MassFunction
from repro.ds.moebius import belief_table, mass_from_belief
from repro.ds.measures import (
    discord,
    information_gain,
    nonspecificity,
    total_uncertainty,
)
from repro.ds.conditioning import condition
from tests.conftest import UNIVERSE, mass_functions


class TestMoebius:
    def test_simple_inversion(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        m = mass_from_belief({("a",): "1/2", ("a", "b"): 1}, frame)
        assert m[{"a"}] == Fraction(1, 2)
        assert m[{"a", "b"}] == Fraction(1, 2)

    def test_frame_belief_defaults_to_one(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        m = mass_from_belief({("a",): 1}, frame)
        assert m[{"a"}] == 1

    def test_bad_frame_belief(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        with pytest.raises(MassFunctionError, match="must be 1"):
            mass_from_belief({("a", "b"): "1/2"}, frame)

    def test_incoherent_beliefs_rejected(self):
        """Bel({a}) + Bel({b}) > Bel({a,b}) is not totally monotone."""
        frame = FrameOfDiscernment("f", ["a", "b"])
        with pytest.raises(MassFunctionError, match="monotone"):
            mass_from_belief(
                {("a",): "3/4", ("b",): "3/4", ("a", "b"): 1}, frame
            )

    def test_frame_from_plain_values(self):
        m = mass_from_belief({("x",): 1}, ["x", "y"])
        assert m.definite_value() == "x"

    def test_belief_table_needs_frame(self):
        with pytest.raises(MassFunctionError):
            belief_table(MassFunction({"a": 1}))

    def test_belief_table_contents(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        m = MassFunction({"a": "1/2", OMEGA: "1/2"}, frame)
        table = belief_table(m)
        assert table[frozenset({"a"})] == Fraction(1, 2)
        assert table[frozenset({"b"})] == 0
        assert table[frozenset({"a", "b"})] == 1


@given(m=mass_functions(universe=UNIVERSE[:3], max_focal=3))
def test_moebius_round_trip(m):
    """mass -> belief table -> mass is the identity (exact)."""
    frame = FrameOfDiscernment("u", UNIVERSE[:3])
    framed = m.with_frame(frame)
    table = belief_table(framed)
    recovered = mass_from_belief(table, frame)
    assert recovered == framed


class TestMeasures:
    def test_definite_value_has_no_uncertainty(self):
        m = MassFunction({"a": 1})
        assert nonspecificity(m) == 0.0
        assert discord(m) == 0.0
        assert total_uncertainty(m) == 0.0

    def test_vacuous_is_pure_nonspecificity(self):
        frame = FrameOfDiscernment("f", ["a", "b", "c", "d"])
        m = MassFunction({OMEGA: 1}, frame)
        assert nonspecificity(m) == 2.0  # log2(4)
        assert discord(m) == 0.0

    def test_omega_nonspecificity_needs_frame(self):
        with pytest.raises(MassFunctionError):
            nonspecificity(MassFunction({OMEGA: 1}))

    def test_bayesian_mass_is_pure_discord(self):
        m = MassFunction({"a": "1/2", "b": "1/2"})
        assert nonspecificity(m) == 0.0
        # D = -sum 1/2 log2(1/2) = 1 bit.
        assert discord(m) == pytest.approx(1.0)

    def test_consonant_evidence_has_no_discord(self):
        m = MassFunction({"a": "1/2", ("a", "b"): "1/2"})
        assert discord(m) == pytest.approx(-0.5 * math.log2(1.0) - 0.5 * math.log2(1.0))

    def test_combination_gains_information_on_agreement(self):
        frame = FrameOfDiscernment("f", ["a", "b", "c"])
        before = MassFunction({("a", "b"): "1/2", OMEGA: "1/2"}, frame)
        sharpening = MassFunction({("a", "b"): "4/5", OMEGA: "1/5"}, frame)
        after = before.combine(sharpening)
        assert information_gain(before, after) > 0

    def test_paper_combination_reduces_nonspecificity(self):
        frame = FrameOfDiscernment("speciality", ["ca", "hu", "si"])
        m1 = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"}, frame)
        m2 = MassFunction({("ca", "hu"): "1/2", "hu": "1/4", OMEGA: "1/4"}, frame)
        combined = m1.combine(m2)
        assert nonspecificity(combined) < nonspecificity(m1)
        assert nonspecificity(combined) < nonspecificity(m2)


@given(m=mass_functions())
def test_measures_nonnegative(m):
    frame = FrameOfDiscernment("u", UNIVERSE)
    framed = m.with_frame(frame)
    assert nonspecificity(framed) >= 0
    assert discord(framed) >= -1e-12
    assert total_uncertainty(framed) >= -1e-12


class TestConditioning:
    def test_paper_evidence_conditioned_on_chinese_school(self):
        m = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
        conditioned = condition(m, {"hu", "si"})
        assert conditioned[{"hu", "si"}] == 1

    def test_conditioning_on_focal_singleton(self):
        m = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
        conditioned = condition(m, {"ca"})
        assert conditioned.definite_value() == "ca"

    def test_conditioning_on_implausible_set_conflicts(self):
        m = MassFunction({"ca": 1})
        with pytest.raises(TotalConflictError):
            condition(m, {"hu"})

    def test_conditioning_is_idempotent(self):
        m = MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})
        once = condition(m, {"hu", "si"})
        twice = condition(once, {"hu", "si"})
        assert once == twice


@given(m=mass_functions())
def test_conditioning_never_lowers_belief_inside_constraint(m):
    constraint = frozenset(UNIVERSE[:2])
    try:
        conditioned = condition(m, constraint)
    except TotalConflictError:
        return
    assert conditioned.bel(constraint) == 1
