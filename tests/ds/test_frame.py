"""Tests for frames of discernment and the OMEGA singleton."""

import pickle

import pytest

from repro.errors import DomainError
from repro.ds.frame import (
    MEMBERSHIP_FRAME,
    OMEGA,
    FrameOfDiscernment,
    Omega,
    is_omega,
)


class TestOmega:
    def test_singleton_identity(self):
        assert Omega() is OMEGA

    def test_repr(self):
        assert repr(OMEGA) == "Ω"

    def test_is_omega(self):
        assert is_omega(OMEGA)
        assert is_omega(Omega())
        assert not is_omega(frozenset({"a"}))
        assert not is_omega("omega")

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(OMEGA)) is OMEGA

    def test_usable_as_dict_key(self):
        d = {OMEGA: 1, frozenset({"a"}): 2}
        assert d[OMEGA] == 1


class TestFrameOfDiscernment:
    def test_basic_membership(self):
        frame = FrameOfDiscernment("rating", ["ex", "gd", "avg"])
        assert frame.contains("ex")
        assert not frame.contains("bad")
        assert "gd" in frame
        assert len(frame) == 3

    def test_empty_frame_rejected(self):
        with pytest.raises(DomainError):
            FrameOfDiscernment("empty", [])

    def test_resolve_omega(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        assert frame.resolve(OMEGA) == frozenset({"x", "y"})

    def test_resolve_concrete(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        assert frame.resolve({"x"}) == frozenset({"x"})

    def test_resolve_rejects_foreign_values(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        with pytest.raises(DomainError, match="outside frame"):
            frame.resolve({"z"})

    def test_canonicalize_full_set_to_omega(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        assert frame.canonicalize({"x", "y"}) is OMEGA

    def test_canonicalize_keeps_proper_subset(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        assert frame.canonicalize({"x"}) == frozenset({"x"})

    def test_is_subset(self):
        frame = FrameOfDiscernment("f", ["x", "y", "z"])
        assert frame.is_subset({"x", "z"})
        assert not frame.is_subset({"x", "w"})

    def test_iteration_is_deterministic(self):
        frame = FrameOfDiscernment("f", ["b", "a", "c"])
        assert list(frame) == list(frame)

    def test_subsets_nonempty(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        subsets = list(frame.subsets())
        assert frozenset({"x"}) in subsets
        assert frozenset({"x", "y"}) in subsets
        assert frozenset() not in subsets
        assert len(subsets) == 3

    def test_subsets_proper_excludes_frame(self):
        frame = FrameOfDiscernment("f", ["x", "y"])
        subsets = list(frame.subsets(proper=True))
        assert frozenset({"x", "y"}) not in subsets
        assert len(subsets) == 2

    def test_subsets_with_empty(self):
        frame = FrameOfDiscernment("f", ["x"])
        assert frozenset() in frame.subsets(nonempty=False)

    def test_equality_and_hash(self):
        f1 = FrameOfDiscernment("f", ["x", "y"])
        f2 = FrameOfDiscernment("f", ["y", "x"])
        f3 = FrameOfDiscernment("g", ["x", "y"])
        assert f1 == f2
        assert hash(f1) == hash(f2)
        assert f1 != f3

    def test_membership_frame(self):
        assert MEMBERSHIP_FRAME.contains(True)
        assert MEMBERSHIP_FRAME.contains(False)
        assert len(MEMBERSHIP_FRAME) == 2
