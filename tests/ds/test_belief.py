"""Tests for belief/plausibility/commonality measures."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ds.frame import OMEGA, FrameOfDiscernment
from repro.ds.mass import MassFunction
from repro.ds.belief import (
    belief,
    commonality,
    doubt,
    plausibility,
    uncertainty_interval,
)
from tests.conftest import UNIVERSE, mass_functions


@pytest.fixture
def wok():
    """The Section 2.1 example mass function for restaurant wok."""
    return MassFunction({"ca": "1/2", ("hu", "si"): "1/3", OMEGA: "1/6"})


class TestPaperExample:
    def test_belief_of_chinese_specialities(self, wok):
        # Bel({ca, hu, si}) = 5/6 in the paper.
        assert belief(wok, {"ca", "hu", "si"}) == Fraction(5, 6)

    def test_plausibility_of_chinese_specialities(self, wok):
        # Pls({ca, hu, si}) = 1 in the paper.
        assert plausibility(wok, {"ca", "hu", "si"}) == 1

    def test_uncertainty_interval(self, wok):
        assert uncertainty_interval(wok, {"ca", "hu", "si"}) == (
            Fraction(5, 6),
            Fraction(1),
        )


class TestBelief:
    def test_singleton(self, wok):
        assert belief(wok, {"ca"}) == Fraction(1, 2)
        assert belief(wok, {"hu"}) == 0  # mass on {hu,si} is not committed to {hu}

    def test_superset_collects_subset_masses(self, wok):
        assert belief(wok, {"hu", "si"}) == Fraction(1, 3)

    def test_omega_query_is_total(self, wok):
        assert belief(wok, OMEGA) == 1

    def test_unframed_omega_never_inside_concrete(self, wok):
        # Without a frame, OMEGA's 1/6 cannot be claimed by any concrete set.
        assert belief(wok, {"ca", "hu", "si", "am", "mu", "it", "ta"}) == Fraction(5, 6)

    def test_framed_omega_inside_full_set(self):
        frame = FrameOfDiscernment("f", ["a", "b"])
        m = MassFunction({"a": "1/2", OMEGA: "1/2"}, frame)
        assert belief(m, {"a", "b"}) == 1


class TestPlausibility:
    def test_singleton(self, wok):
        # Pls({hu}) = m({hu,si}) + m(OMEGA)
        assert plausibility(wok, {"hu"}) == Fraction(1, 3) + Fraction(1, 6)

    def test_disjoint_value(self, wok):
        # 'am' intersects nothing except OMEGA.
        assert plausibility(wok, {"am"}) == Fraction(1, 6)

    def test_omega_query(self, wok):
        assert plausibility(wok, OMEGA) == 1

    def test_doubt_is_one_minus_pls(self, wok):
        assert doubt(wok, {"ca"}) == 1 - plausibility(wok, {"ca"})


class TestCommonality:
    def test_commonality_counts_supersets(self, wok):
        # Q({hu}) = m({hu,si}) + m(OMEGA)
        assert commonality(wok, {"hu"}) == Fraction(1, 2)
        # Q({ca}) = m({ca}) + m(OMEGA)
        assert commonality(wok, {"ca"}) == Fraction(2, 3)

    def test_commonality_of_omega_query(self, wok):
        assert commonality(wok, OMEGA) == Fraction(1, 6)


class TestMethodsDelegate:
    def test_mass_function_methods(self, wok):
        assert wok.bel({"ca"}) == belief(wok, {"ca"})
        assert wok.pls({"ca"}) == plausibility(wok, {"ca"})


@given(m=mass_functions())
def test_bel_never_exceeds_pls(m):
    for size in (1, 2, 3):
        subset = frozenset(UNIVERSE[:size])
        assert belief(m, subset) <= plausibility(m, subset)


@given(m=mass_functions())
def test_bel_pls_duality(m):
    """Pls(A) = 1 - Bel(complement of A) over the evidence's universe."""
    frame = FrameOfDiscernment("u", UNIVERSE)
    framed = m.with_frame(frame)
    for size in (1, 2, 4):
        subset = frozenset(UNIVERSE[:size])
        complement = frozenset(UNIVERSE) - subset
        if not complement:
            continue
        assert plausibility(framed, subset) == 1 - belief(framed, complement)


@given(m=mass_functions())
def test_bel_monotone_under_inclusion(m):
    smaller = frozenset(UNIVERSE[:2])
    larger = frozenset(UNIVERSE[:4])
    assert belief(m, smaller) <= belief(m, larger)
    assert plausibility(m, smaller) <= plausibility(m, larger)


@given(m=mass_functions(), size=st.integers(min_value=1, max_value=5))
def test_bel_and_pls_bounded(m, size):
    subset = frozenset(UNIVERSE[:size])
    assert 0 <= belief(m, subset) <= 1
    assert 0 <= plausibility(m, subset) <= 1
