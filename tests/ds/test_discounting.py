"""Tests for Shafer discounting."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MassFunctionError
from repro.ds.frame import OMEGA
from repro.ds.mass import MassFunction
from repro.ds.discounting import discount, discount_all
from tests.conftest import mass_functions


class TestDiscount:
    def test_full_reliability_is_identity(self):
        m = MassFunction({"a": "1/2", "b": "1/2"})
        assert discount(m, 1) is m

    def test_zero_reliability_is_vacuous(self):
        m = MassFunction({"a": "1/2", "b": "1/2"})
        assert discount(m, 0).is_vacuous()

    def test_partial_discount(self):
        m = MassFunction({"ex": 1})
        d = discount(m, "4/5")
        assert d[{"ex"}] == Fraction(4, 5)
        assert d[OMEGA] == Fraction(1, 5)

    def test_existing_ignorance_accumulates(self):
        m = MassFunction({"a": "1/2", OMEGA: "1/2"})
        d = discount(m, "1/2")
        assert d[{"a"}] == Fraction(1, 4)
        assert d[OMEGA] == Fraction(3, 4)

    def test_out_of_range_rejected(self):
        m = MassFunction({"a": 1})
        with pytest.raises(MassFunctionError):
            discount(m, "3/2")
        with pytest.raises(MassFunctionError):
            discount(m, -1)

    def test_frame_preserved(self):
        from repro.ds.frame import FrameOfDiscernment

        frame = FrameOfDiscernment("f", ["a", "b"])
        m = MassFunction({"a": 1}, frame)
        assert discount(m, "1/2").frame == frame


class TestDiscountAll:
    def test_per_source_reliability(self):
        sources = {
            "db_a": MassFunction({"x": 1}),
            "db_b": MassFunction({"y": 1}),
        }
        discounted = discount_all(sources, {"db_b": "1/2"})
        assert discounted["db_a"][{"x"}] == 1  # untouched
        assert discounted["db_b"][{"y"}] == Fraction(1, 2)

    def test_inputs_not_mutated(self):
        sources = {"s": MassFunction({"x": 1})}
        discount_all(sources, {"s": "1/2"})
        assert sources["s"][{"x"}] == 1


@given(m=mass_functions(), numerator=st.integers(min_value=0, max_value=10))
def test_discounted_masses_still_normalized(m, numerator):
    reliability = Fraction(numerator, 10)
    d = discount(m, reliability)
    assert sum(value for _, value in d.items()) == 1


@given(m=mass_functions(), numerator=st.integers(min_value=0, max_value=10))
def test_discounting_weakens_belief(m, numerator):
    """Discounting never increases the belief of any proper subset."""
    reliability = Fraction(numerator, 10)
    d = discount(m, reliability)
    for element in m.focal_elements():
        if element is OMEGA:
            continue
        assert d.bel(element) <= m.bel(element)
        assert d.pls(element) >= reliability * m.pls(element)
