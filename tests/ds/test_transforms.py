"""Tests for probability transforms and decision rules."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.errors import TransformError
from repro.ds.frame import OMEGA, FrameOfDiscernment
from repro.ds.mass import MassFunction
from repro.ds.transforms import (
    max_belief_decision,
    max_pignistic_decision,
    max_plausibility_decision,
    pignistic,
    plausibility_transform,
)
from tests.conftest import mass_functions


class TestPignistic:
    def test_splits_set_mass_evenly(self):
        m = MassFunction({"ca": "1/2", ("hu", "si"): "1/2"})
        betp = pignistic(m)
        assert betp["ca"] == Fraction(1, 2)
        assert betp["hu"] == Fraction(1, 4)
        assert betp["si"] == Fraction(1, 4)

    def test_is_probability_distribution(self):
        m = MassFunction({"a": "1/3", ("b", "c"): "1/3", OMEGA: "1/3"})
        framed = m.with_frame(FrameOfDiscernment("f", ["a", "b", "c"]))
        betp = pignistic(framed)
        assert sum(betp.values()) == 1

    def test_omega_needs_frame(self):
        m = MassFunction({"a": "1/2", OMEGA: "1/2"})
        with pytest.raises(TransformError, match="enumerated frame"):
            pignistic(m)

    def test_definite_value_is_sure(self):
        betp = pignistic(MassFunction.definite("x"))
        assert betp == {"x": Fraction(1)}


class TestPlausibilityTransform:
    def test_normalizes_singleton_plausibilities(self):
        m = MassFunction({"a": "1/2", ("a", "b"): "1/2"})
        transformed = plausibility_transform(m)
        # Pls({a}) = 1, Pls({b}) = 1/2 -> normalized 2/3, 1/3.
        assert transformed["a"] == Fraction(2, 3)
        assert transformed["b"] == Fraction(1, 3)

    def test_sums_to_one(self):
        m = MassFunction({"a": "1/4", "b": "1/4", ("a", "b", "c"): "1/2"})
        assert sum(plausibility_transform(m).values()) == 1


class TestDecisions:
    def test_max_belief(self):
        m = MassFunction({"a": "2/5", "b": "3/5"})
        assert max_belief_decision(m) == "b"

    def test_max_plausibility_prefers_covered_value(self):
        # Pls({b}) = 1/2 + 3/10 = 4/5 beats Pls({a}) = 1/2 + 1/5 = 7/10.
        m = MassFunction({("a", "b"): "1/2", "b": "3/10", "a": "1/5"})
        assert max_plausibility_decision(m) == "b"

    def test_max_pignistic(self):
        m = MassFunction({"a": "2/5", ("b", "c"): "3/5"})
        # BetP: a=2/5, b=c=3/10 -> a wins.
        assert max_pignistic_decision(m) == "a"

    def test_deterministic_tie_break(self):
        m = MassFunction({"a": "1/2", "b": "1/2"})
        assert max_belief_decision(m) == max_belief_decision(m)


@given(m=mass_functions())
def test_pignistic_always_sums_to_one(m):
    framed = m.with_frame(FrameOfDiscernment("u", ["a", "b", "c", "d", "e"]))
    betp = pignistic(framed)
    assert sum(betp.values()) == 1
    assert all(p >= 0 for p in betp.values())


@given(m=mass_functions())
def test_pignistic_between_bel_and_pls(m):
    """BetP(v) always lies inside [Bel({v}), Pls({v})]."""
    framed = m.with_frame(FrameOfDiscernment("u", ["a", "b", "c", "d", "e"]))
    betp = pignistic(framed)
    for value, probability in betp.items():
        assert framed.bel({value}) <= probability <= framed.pls({value})
