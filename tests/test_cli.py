"""Tests for the command-line interface.

Database locations go through the storage-backend resolver, so the
whole file honors ``REPRO_STORAGE`` -- the CI matrix reruns it with the
SQLite engine as the default backend.  Tests that assert the *JSON*
on-disk format pin the ``json:`` scheme explicitly.
"""

import io
import json

import pytest

from repro.cli import main
from repro.storage import open_database


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


def read_database(path):
    """Load a database through the URL resolver, releasing the backend."""
    db = open_database(str(path))
    db.close()
    return db


@pytest.fixture
def demo_db(tmp_path):
    path = tmp_path / "restaurants.json"
    status, _ = run_cli("demo", str(path))
    assert status == 0
    return path


class TestDemo:
    def test_writes_six_relations(self, tmp_path):
        path = tmp_path / "db.json"
        status, output = run_cli("demo", str(path))
        assert status == 0
        assert "6 relations" in output
        db = read_database(path)
        assert db.names() == ("M_A", "M_B", "RA", "RB", "RM_A", "RM_B")

    def test_integrated_flag(self, tmp_path):
        path = tmp_path / "db.json"
        status, _ = run_cli("demo", str(path), "--integrated")
        assert status == 0
        db = read_database(path)
        assert {"R", "M", "RM"} <= set(db.names())
        assert len(db.get("R")) == 6

    def test_output_is_valid_json(self, tmp_path):
        # json: pinned: this asserts the JSON engine's on-disk format.
        path = tmp_path / "db.json"
        run_cli("demo", f"json:{path}")
        json.loads(path.read_text())

    def test_scheme_url_picks_engine(self, tmp_path):
        """An explicit sqlite: URL wins over the .json extension."""
        path = tmp_path / "oddly-named.json"
        status, output = run_cli("demo", f"sqlite:{path}")
        assert status == 0
        assert f"sqlite:{path}" in output
        db = read_database(f"sqlite:{path}")
        assert db.names() == ("M_A", "M_B", "RA", "RB", "RM_A", "RM_B")


class TestQuery:
    def test_select(self, demo_db):
        status, output = run_cli(
            "query", str(demo_db), "SELECT * FROM RA WHERE speciality IS {si}"
        )
        assert status == 0
        assert "garden" in output
        assert "wok" in output
        assert "olive" not in output

    def test_union_matches_table4_digits(self, demo_db):
        status, output = run_cli("query", str(demo_db), "RA UNION RB BY (rname)")
        assert status == 0
        assert "0.655" in output
        assert "0.857" in output

    def test_explain(self, demo_db):
        status, output = run_cli(
            "query", str(demo_db), "RA UNION RB", "--explain"
        )
        assert status == 0
        assert "Union" in output
        assert "Scan RA" in output

    def test_fraction_style(self, demo_db):
        status, output = run_cli(
            "query", str(demo_db), "RA UNION RB", "--style", "fraction"
        )
        assert status == 0
        assert "19/29" in output

    def test_save_result(self, demo_db, tmp_path):
        destination = tmp_path / "out.json"
        status, output = run_cli(
            "query",
            str(demo_db),
            "RA UNION RB",
            "--save",
            "R",
            str(destination),
        )
        assert status == 0
        saved = read_database(destination)
        assert len(saved.get("R")) == 6

    def test_bad_query_is_clean_error(self, demo_db, capsys):
        status, _ = run_cli("query", str(demo_db), "SELECT FROM nothing")
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_relation_is_clean_error(self, demo_db, capsys):
        status, _ = run_cli("query", str(demo_db), "SELECT * FROM GHOST")
        assert status == 1
        assert "no relation" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        status, _ = run_cli("query", str(tmp_path / "absent.json"), "RA")
        assert status == 1


class TestShow:
    def test_catalog(self, demo_db):
        status, output = run_cli("show", str(demo_db))
        assert status == 0
        assert "6 relation(s)" in output
        assert "RA" in output
        assert "key=(rname)" in output

    def test_single_relation(self, demo_db):
        status, output = run_cli("show", str(demo_db), "RA")
        assert status == 0
        assert "yspeciality" in output
        assert "ashiana" in output

    def test_unknown_relation(self, demo_db, capsys):
        status, _ = run_cli("show", str(demo_db), "GHOST")
        assert status == 1


class TestRepl:
    def run_repl(self, monkeypatch, db_path, script):
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        return run_cli("repl", str(db_path))

    def test_query_loop(self, demo_db, monkeypatch):
        status, output = self.run_repl(
            monkeypatch,
            demo_db,
            "SELECT rname FROM RA WHERE speciality IS {si}\n:quit\n",
        )
        assert status == 0
        assert "garden" in output
        assert "wok" in output

    def test_explain_and_stats(self, demo_db, monkeypatch):
        script = (
            "SELECT rname FROM RA\n"
            "SELECT rname FROM RA\n"
            ":explain SELECT rname FROM RA\n"
            ":stats\n"
            ":quit\n"
        )
        status, output = self.run_repl(monkeypatch, demo_db, script)
        assert status == 0
        assert "Scan RA" in output
        # The second run of the identical query is a result-cache hit.
        assert "1 result hits" in output
        # :stats also reports the evidence-kernel path counters and the
        # physical executor / partition configuration.
        assert "kernel path" in output
        assert "executor:" in output
        assert "partition(s)" in output

    def test_stats_names_storage_backend(self, demo_db, monkeypatch):
        status, output = self.run_repl(monkeypatch, demo_db, ":stats\n:quit\n")
        assert status == 0
        assert "storage backend:" in output

    def test_open_switches_databases(self, demo_db, tmp_path, monkeypatch):
        other = tmp_path / "other.sqlite"
        status, _ = run_cli("demo", f"sqlite:{other}")
        assert status == 0
        script = f":open sqlite:{other}\n:stats\n:quit\n"
        status, output = self.run_repl(monkeypatch, demo_db, script)
        assert status == 0
        # The banner reprints for the new database and :stats names it.
        assert output.count("database 'tourist_bureau'") == 2
        assert f"sqlite at {other}" in output

    def test_open_bad_url_stays_in_loop(self, demo_db, monkeypatch):
        script = ":open sqlite:/nonexistent/nowhere.db\n:tables\n:quit\n"
        status, output = self.run_repl(monkeypatch, demo_db, script)
        assert status == 0
        assert "error:" in output
        assert "RA" in output  # the original database is still live

    def test_persist_writes_back(self, tmp_path, monkeypatch):
        path = tmp_path / "db.sqlite"
        status, _ = run_cli("demo", f"sqlite:{path}")
        assert status == 0
        script = ":persist\n:quit\n"
        status, output = self.run_repl(monkeypatch, f"sqlite:{path}", script)
        assert status == 0
        assert "persisted 6 relations" in output
        assert read_database(f"sqlite:{path}").names() == (
            "M_A", "M_B", "RA", "RB", "RM_A", "RM_B",
        )

    def test_tables_lists_catalog(self, demo_db, monkeypatch):
        status, output = self.run_repl(monkeypatch, demo_db, ":tables\n:quit\n")
        assert status == 0
        assert "RA" in output
        assert "key=(rname)" in output

    def test_errors_stay_in_loop(self, demo_db, monkeypatch):
        script = ":bogus\nSELECT * FROM GHOST\nSELECT rname FROM RA\n"
        status, output = self.run_repl(monkeypatch, demo_db, script)
        assert status == 0  # EOF exits cleanly
        assert "unknown command" in output
        assert "no relation" in output
        assert "ashiana" in output

    def test_stats_includes_the_metrics_registry(self, demo_db, monkeypatch):
        script = "SELECT rname FROM RA\n:stats\n:quit\n"
        status, output = self.run_repl(monkeypatch, demo_db, script)
        assert status == 0
        assert "metrics:" in output
        assert "kernel.kernel_combinations" in output
        assert "session.queries" in output

    def test_profile_annotates_the_plan(self, demo_db, monkeypatch):
        script = ":profile RA UNION RB BY (rname)\n:quit\n"
        status, output = self.run_repl(monkeypatch, demo_db, script)
        assert status == 0
        assert "EXPLAIN ANALYZE" in output
        assert "rows=6+5->6" in output
        assert "Scan RA" in output and "Scan RB" in output
        assert "time=" in output
        assert "combine=" in output

    def test_profile_without_query_is_usage_error(self, demo_db, monkeypatch):
        status, output = self.run_repl(
            monkeypatch, demo_db, ":profile\n:quit\n"
        )
        assert status == 0
        assert "usage: :profile" in output

    def test_trace_out_writes_span_records(
        self, demo_db, tmp_path, monkeypatch
    ):
        trace = tmp_path / "repl-trace.jsonl"
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("SELECT rname FROM RA\n:quit\n")
        )
        status, _ = run_cli("repl", str(demo_db), "--trace-out", str(trace))
        assert status == 0
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line
        ]
        names = {record["name"] for record in records}
        assert "session.execute" in names
        assert "physical.scan" in names


class TestStream:
    @pytest.fixture
    def events_file(self, tmp_path):
        from repro.datasets.restaurants import table_ra, table_rb
        from repro.stream import FlushEvent, relation_to_events, write_events

        path = tmp_path / "events.jsonl"
        write_events(
            relation_to_events(table_ra(), "daily")
            + [FlushEvent()]
            + relation_to_events(table_rb(), "tribune"),
            path,
        )
        return path

    def test_replay_reports_throughput(self, demo_db, events_file):
        status, output = run_cli(
            "stream", str(demo_db), str(events_file), "--schema", "RA"
        )
        assert status == 0
        assert "events/s" in output
        assert "watermark 11" in output
        assert "6 tuples" in output
        assert "batch 1" in output and "batch 2" in output
        # The throughput report splits combinations by evidence path:
        # enumerated attributes (rating, speciality) ride the kernel,
        # open text attributes account for the fallback share.
        assert "on the kernel path" in output
        assert "on the fallback path" in output
        # ... and names the physical executor configuration.
        assert "executor:" in output

    def test_workers_flag_fans_out_and_matches_serial(
        self, demo_db, events_file, tmp_path
    ):
        """--workers N replays through a pool; the integrated relation
        is identical to the serial replay."""
        from repro.exec import executor_scope

        serial_out = tmp_path / "serial.json"
        pooled_out = tmp_path / "pooled.json"
        with executor_scope():  # restore config mutated by --workers
            status, _ = run_cli(
                "stream", str(demo_db), str(events_file),
                "--schema", "RA", "--save", str(serial_out),
            )
            assert status == 0
            status, output = run_cli(
                "stream", str(demo_db), str(events_file),
                "--schema", "RA", "--workers", "3", "--save", str(pooled_out),
            )
            assert status == 0
            assert "executor: thread, 3 worker(s)" in output
        serial_db = read_database(serial_out)
        pooled_db = read_database(pooled_out)
        assert pooled_db.get("integrated").same_tuples(
            serial_db.get("integrated")
        )
        assert list(pooled_db.get("integrated").keys()) == list(
            serial_db.get("integrated").keys()
        )

    def test_save_persists_integrated_relation(
        self, demo_db, events_file, tmp_path
    ):
        out = tmp_path / "live.json"
        status, output = run_cli(
            "stream",
            str(demo_db),
            str(events_file),
            "--schema",
            "RA",
            "--name",
            "R_LIVE",
            "--save",
            str(out),
        )
        assert status == 0
        db = read_database(out)
        assert "R_LIVE" in db
        assert len(db.get("R_LIVE")) == 6

    def test_show_prints_table(self, demo_db, events_file):
        status, output = run_cli(
            "stream",
            str(demo_db),
            str(events_file),
            "--schema",
            "RA",
            "--show",
        )
        assert status == 0
        assert "ashiana" in output

    def test_malformed_events_are_clean_errors(self, demo_db, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "teleport"}\n')
        status, _ = run_cli("stream", str(demo_db), str(bad), "--schema", "RA")
        assert status == 1
        assert "unknown event op" in capsys.readouterr().err

    def test_durable_flag_journals_batches(self, demo_db, events_file, tmp_path):
        from repro.storage import open_backend

        wal = tmp_path / "wal.jsonl"
        status, output = run_cli(
            "stream", str(demo_db), str(events_file),
            "--schema", "RA", "--name", "R_LIVE",
            "--durable", f"log:{wal}",
        )
        assert status == 0
        assert "durable:" in output and "watermark 11" in output
        with open_backend(f"log:{wal}") as backend:
            recovered = backend.recover_stream("R_LIVE", attach=False)
            assert recovered.watermark == 11
            assert len(recovered.relation) == 6


    def test_zero_elapsed_replay_elides_the_rate(
        self, demo_db, events_file, monkeypatch
    ):
        """A replay finishing between clock ticks must not print
        'inf events/s'."""
        import time

        monkeypatch.setattr(time, "perf_counter", lambda: 42.0)
        status, output = run_cli(
            "stream", str(demo_db), str(events_file), "--schema", "RA"
        )
        assert status == 0
        assert "inf" not in output
        assert "events/s: n/a" in output

    def test_trace_out_writes_flush_spans(
        self, demo_db, events_file, tmp_path
    ):
        trace = tmp_path / "stream-trace.jsonl"
        status, _ = run_cli(
            "stream",
            str(demo_db),
            str(events_file),
            "--schema",
            "RA",
            "--trace-out",
            str(trace),
        )
        assert status == 0
        records = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if line
        ]
        names = [record["name"] for record in records]
        # The events file carries an explicit mid-file flush marker and
        # replay flushes once more at the end.
        assert names.count("stream.flush") == 2


class TestStats:
    def test_registry_table_without_a_database(self):
        status, output = run_cli("stats")
        assert status == 0
        assert output.startswith("metrics:")
        assert "kernel.kernel_combinations" in output
        assert "stream.ingest_lag_events" in output

    def test_query_runs_against_the_database(self, demo_db):
        status, output = run_cli(
            "stats", str(demo_db), "--query", "RA UNION RB BY (rname)"
        )
        assert status == 0
        assert "session.queries" in output
        assert "storage backend" not in output  # registry table only

    def test_query_without_database_is_a_clean_error(self, capsys):
        status, _ = run_cli("stats", "--query", "RA")
        assert status == 1
        assert "--query needs a DATABASE" in capsys.readouterr().err

    def test_json_round_trips_with_stable_names(self, demo_db):
        status, output = run_cli(
            "stats", str(demo_db), "--query", "RA UNION RB BY (rname)",
            "--json",
        )
        assert status == 0
        payload = json.loads(output)
        for name in (
            "kernel.kernel_combinations",
            "kernel.fallback_combinations",
            "exec.tasks",
            "session.queries",
            "session.plans_built",
            "session.result_cache_hit_ratio",
            "stream.ingest_lag_events",
        ):
            assert name in payload
        assert payload["session.queries"] >= 1
        # Storage I/O of the demo-database load is accounted per scheme.
        assert any(name.startswith("storage.") for name in payload)
        # Histogram values arrive as structured objects.
        latencies = [
            value
            for name, value in payload.items()
            if name.endswith("_seconds") and isinstance(value, dict)
        ]
        assert any(value["count"] >= 1 for value in latencies)

    def test_prometheus_exposition(self, demo_db):
        status, output = run_cli(
            "stats", str(demo_db), "--query", "RA", "--prometheus"
        )
        assert status == 0
        assert "# TYPE repro_kernel_kernel_combinations counter" in output
        assert "# TYPE repro_session_result_cache_hit_ratio gauge" in output
        assert '_bucket{le="+Inf"}' in output


class TestConvert:
    def test_json_to_sqlite_round_trip(self, demo_db, tmp_path):
        destination = tmp_path / "out.sqlite"
        status, output = run_cli(
            "convert", str(demo_db), f"sqlite:{destination}"
        )
        assert status == 0
        assert "converted 6 relations" in output
        source = read_database(demo_db)
        converted = read_database(f"sqlite:{destination}")
        assert converted.names() == source.names()
        for name in source.names():
            assert converted.get(name) == source.get(name)

    def test_repartitions_on_the_way(self, demo_db, tmp_path):
        destination = tmp_path / "out.jsonl"
        status, output = run_cli(
            "convert", str(demo_db), f"log:{destination}", "--partitions", "3"
        )
        assert status == 0
        assert "in 3 partitions" in output
        from repro.storage import open_backend

        with open_backend(f"log:{destination}") as backend:
            assert backend.catalog()["RA"]["partitions"] == 3

    def test_same_location_rejected(self, demo_db, capsys):
        status, _ = run_cli("convert", str(demo_db), str(demo_db))
        assert status == 1
        assert "distinct locations" in capsys.readouterr().err

    def test_missing_source_is_clean_error(self, tmp_path, capsys):
        status, _ = run_cli(
            "convert", str(tmp_path / "absent.json"), str(tmp_path / "out.db")
        )
        assert status == 1


class TestCompact:
    @pytest.fixture
    def grown_log(self, demo_db, tmp_path):
        """A journal with history: the demo converted in, then resaved."""
        destination = tmp_path / "wal.jsonl"
        status, _ = run_cli("convert", str(demo_db), f"log:{destination}")
        assert status == 0
        from repro.storage import open_backend

        with open_backend(f"log:{destination}") as backend:
            for name in backend.list_relations():
                backend.save_relation(backend.load_relation(name))
        return destination

    def test_reports_bytes_before_and_after(self, grown_log):
        before = grown_log.stat().st_size
        status, output = run_cli("compact", f"log:{grown_log}")
        assert status == 0
        after = grown_log.stat().st_size
        assert after < before
        assert f"{before:,} -> {after:,} bytes" in output
        assert "reclaimed" in output
        # The compacted store still loads every relation.
        db = read_database(f"log:{grown_log}")
        assert len(db.names()) == 6

    def test_snapshot_backends_are_a_clean_error(self, demo_db, capsys):
        status, _ = run_cli("compact", f"json:{demo_db}")
        assert status == 1
        assert "does not support compaction" in capsys.readouterr().err
