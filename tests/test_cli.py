"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main
from repro.storage.serialization import load_database


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


@pytest.fixture
def demo_db(tmp_path):
    path = tmp_path / "restaurants.json"
    status, _ = run_cli("demo", str(path))
    assert status == 0
    return path


class TestDemo:
    def test_writes_six_relations(self, tmp_path):
        path = tmp_path / "db.json"
        status, output = run_cli("demo", str(path))
        assert status == 0
        assert "6 relations" in output
        db = load_database(path)
        assert db.names() == ("M_A", "M_B", "RA", "RB", "RM_A", "RM_B")

    def test_integrated_flag(self, tmp_path):
        path = tmp_path / "db.json"
        status, _ = run_cli("demo", str(path), "--integrated")
        assert status == 0
        db = load_database(path)
        assert {"R", "M", "RM"} <= set(db.names())
        assert len(db.get("R")) == 6

    def test_output_is_valid_json(self, tmp_path):
        path = tmp_path / "db.json"
        run_cli("demo", str(path))
        json.loads(path.read_text())


class TestQuery:
    def test_select(self, demo_db):
        status, output = run_cli(
            "query", str(demo_db), "SELECT * FROM RA WHERE speciality IS {si}"
        )
        assert status == 0
        assert "garden" in output
        assert "wok" in output
        assert "olive" not in output

    def test_union_matches_table4_digits(self, demo_db):
        status, output = run_cli("query", str(demo_db), "RA UNION RB BY (rname)")
        assert status == 0
        assert "0.655" in output
        assert "0.857" in output

    def test_explain(self, demo_db):
        status, output = run_cli(
            "query", str(demo_db), "RA UNION RB", "--explain"
        )
        assert status == 0
        assert "Union" in output
        assert "Scan RA" in output

    def test_fraction_style(self, demo_db):
        status, output = run_cli(
            "query", str(demo_db), "RA UNION RB", "--style", "fraction"
        )
        assert status == 0
        assert "19/29" in output

    def test_save_result(self, demo_db, tmp_path):
        destination = tmp_path / "out.json"
        status, output = run_cli(
            "query",
            str(demo_db),
            "RA UNION RB",
            "--save",
            "R",
            str(destination),
        )
        assert status == 0
        saved = load_database(destination)
        assert len(saved.get("R")) == 6

    def test_bad_query_is_clean_error(self, demo_db, capsys):
        status, _ = run_cli("query", str(demo_db), "SELECT FROM nothing")
        assert status == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_relation_is_clean_error(self, demo_db, capsys):
        status, _ = run_cli("query", str(demo_db), "SELECT * FROM GHOST")
        assert status == 1
        assert "no relation" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        status, _ = run_cli("query", str(tmp_path / "absent.json"), "RA")
        assert status == 1


class TestShow:
    def test_catalog(self, demo_db):
        status, output = run_cli("show", str(demo_db))
        assert status == 0
        assert "6 relation(s)" in output
        assert "RA" in output
        assert "key=(rname)" in output

    def test_single_relation(self, demo_db):
        status, output = run_cli("show", str(demo_db), "RA")
        assert status == 0
        assert "yspeciality" in output
        assert "ashiana" in output

    def test_unknown_relation(self, demo_db, capsys):
        status, _ = run_cli("show", str(demo_db), "GHOST")
        assert status == 1


class TestRepl:
    def run_repl(self, monkeypatch, db_path, script):
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        return run_cli("repl", str(db_path))

    def test_query_loop(self, demo_db, monkeypatch):
        status, output = self.run_repl(
            monkeypatch,
            demo_db,
            "SELECT rname FROM RA WHERE speciality IS {si}\n:quit\n",
        )
        assert status == 0
        assert "garden" in output
        assert "wok" in output

    def test_explain_and_stats(self, demo_db, monkeypatch):
        script = (
            "SELECT rname FROM RA\n"
            "SELECT rname FROM RA\n"
            ":explain SELECT rname FROM RA\n"
            ":stats\n"
            ":quit\n"
        )
        status, output = self.run_repl(monkeypatch, demo_db, script)
        assert status == 0
        assert "Scan RA" in output
        # The second run of the identical query is a result-cache hit.
        assert "1 result hits" in output
        # :stats also reports the evidence-kernel path counters and the
        # physical executor / partition configuration.
        assert "kernel path" in output
        assert "executor:" in output
        assert "partition(s)" in output

    def test_tables_lists_catalog(self, demo_db, monkeypatch):
        status, output = self.run_repl(monkeypatch, demo_db, ":tables\n:quit\n")
        assert status == 0
        assert "RA" in output
        assert "key=(rname)" in output

    def test_errors_stay_in_loop(self, demo_db, monkeypatch):
        script = ":bogus\nSELECT * FROM GHOST\nSELECT rname FROM RA\n"
        status, output = self.run_repl(monkeypatch, demo_db, script)
        assert status == 0  # EOF exits cleanly
        assert "unknown command" in output
        assert "no relation" in output
        assert "ashiana" in output


class TestStream:
    @pytest.fixture
    def events_file(self, tmp_path):
        from repro.datasets.restaurants import table_ra, table_rb
        from repro.stream import FlushEvent, relation_to_events, write_events

        path = tmp_path / "events.jsonl"
        write_events(
            relation_to_events(table_ra(), "daily")
            + [FlushEvent()]
            + relation_to_events(table_rb(), "tribune"),
            path,
        )
        return path

    def test_replay_reports_throughput(self, demo_db, events_file):
        status, output = run_cli(
            "stream", str(demo_db), str(events_file), "--schema", "RA"
        )
        assert status == 0
        assert "events/s" in output
        assert "watermark 11" in output
        assert "6 tuples" in output
        assert "batch 1" in output and "batch 2" in output
        # The throughput report splits combinations by evidence path:
        # enumerated attributes (rating, speciality) ride the kernel,
        # open text attributes account for the fallback share.
        assert "on the kernel path" in output
        assert "on the fallback path" in output
        # ... and names the physical executor configuration.
        assert "executor:" in output

    def test_workers_flag_fans_out_and_matches_serial(
        self, demo_db, events_file, tmp_path
    ):
        """--workers N replays through a pool; the integrated relation
        is identical to the serial replay."""
        from repro.exec import executor_scope

        serial_out = tmp_path / "serial.json"
        pooled_out = tmp_path / "pooled.json"
        with executor_scope():  # restore config mutated by --workers
            status, _ = run_cli(
                "stream", str(demo_db), str(events_file),
                "--schema", "RA", "--save", str(serial_out),
            )
            assert status == 0
            status, output = run_cli(
                "stream", str(demo_db), str(events_file),
                "--schema", "RA", "--workers", "3", "--save", str(pooled_out),
            )
            assert status == 0
            assert "executor: thread, 3 worker(s)" in output
        serial_db = load_database(serial_out)
        pooled_db = load_database(pooled_out)
        assert pooled_db.get("integrated").same_tuples(
            serial_db.get("integrated")
        )
        assert list(pooled_db.get("integrated").keys()) == list(
            serial_db.get("integrated").keys()
        )

    def test_save_persists_integrated_relation(
        self, demo_db, events_file, tmp_path
    ):
        out = tmp_path / "live.json"
        status, output = run_cli(
            "stream",
            str(demo_db),
            str(events_file),
            "--schema",
            "RA",
            "--name",
            "R_LIVE",
            "--save",
            str(out),
        )
        assert status == 0
        db = load_database(out)
        assert "R_LIVE" in db
        assert len(db.get("R_LIVE")) == 6

    def test_show_prints_table(self, demo_db, events_file):
        status, output = run_cli(
            "stream",
            str(demo_db),
            str(events_file),
            "--schema",
            "RA",
            "--show",
        )
        assert status == 0
        assert "ashiana" in output

    def test_malformed_events_are_clean_errors(self, demo_db, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "teleport"}\n')
        status, _ = run_cli("stream", str(demo_db), str(bad), "--schema", "RA")
        assert status == 1
        assert "unknown event op" in capsys.readouterr().err
