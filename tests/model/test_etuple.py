"""Tests for extended tuples."""

from fractions import Fraction

import pytest

from repro.errors import RelationError, SchemaError
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, NumericDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.membership import CERTAIN, TupleMembership
from repro.model.schema import RelationSchema


@pytest.fixture
def schema():
    return RelationSchema(
        "R",
        [
            Attribute("rname", TextDomain("rname"), key=True),
            Attribute("bldg_no", NumericDomain("bldg_no", integral=True)),
            Attribute(
                "rating",
                EnumeratedDomain("rating", ["ex", "gd", "avg"]),
                uncertain=True,
            ),
        ],
    )


class TestConstruction:
    def test_basic(self, schema):
        t = ExtendedTuple(
            schema,
            {"rname": "wok", "bldg_no": 600, "rating": "[gd^0.25, avg^0.75]"},
        )
        assert t.key() == ("wok",)
        assert t.membership == CERTAIN
        assert t.evidence("rating").mass({"gd"}) == Fraction(1, 4)

    def test_membership_pair_accepted(self, schema):
        t = ExtendedTuple(
            schema,
            {"rname": "wok", "bldg_no": 600, "rating": "ex"},
            ("1/2", "3/4"),
        )
        assert t.membership == TupleMembership("1/2", "3/4")

    def test_bad_membership_rejected(self, schema):
        with pytest.raises(RelationError):
            ExtendedTuple(
                schema,
                {"rname": "wok", "bldg_no": 600, "rating": "ex"},
                "not a membership",
            )

    def test_missing_attribute_rejected(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            ExtendedTuple(schema, {"rname": "wok", "rating": "ex"})

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(SchemaError, match="unknown"):
            ExtendedTuple(
                schema,
                {"rname": "wok", "bldg_no": 600, "rating": "ex", "ghost": 1},
            )

    def test_key_must_be_definite(self, schema):
        with pytest.raises(Exception):
            ExtendedTuple(
                schema,
                {
                    "rname": EvidenceSet({"wok": "1/2", "wok2": "1/2"}),
                    "bldg_no": 600,
                    "rating": "ex",
                },
            )

    def test_key_accepts_definite_evidence(self, schema):
        t = ExtendedTuple(
            schema,
            {"rname": EvidenceSet.definite("wok"), "bldg_no": 600, "rating": "ex"},
        )
        assert t.value("rname") == "wok"

    def test_key_domain_validated(self, schema):
        with pytest.raises(Exception):
            ExtendedTuple(schema, {"rname": 42, "bldg_no": 600, "rating": "ex"})

    def test_certain_attribute_rejects_uncertainty(self, schema):
        with pytest.raises(RelationError, match="certain"):
            ExtendedTuple(
                schema,
                {
                    "rname": "wok",
                    "bldg_no": EvidenceSet({frozenset({600, 601}): 1}),
                    "rating": "ex",
                },
            )

    def test_scalar_wrapped_definite(self, schema):
        t = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        assert t.evidence("bldg_no").is_definite()
        assert t.evidence("rating").definite_value() == "ex"

    def test_uncertain_value_validated_against_domain(self, schema):
        with pytest.raises(Exception):
            ExtendedTuple(
                schema,
                {"rname": "wok", "bldg_no": 600, "rating": "[terrible^1]"},
            )


class TestAccessors:
    def test_value_and_getitem(self, schema):
        t = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        assert t["rname"] == "wok"
        assert t.value("bldg_no").definite_value() == 600

    def test_unknown_access_rejected(self, schema):
        t = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        with pytest.raises(SchemaError):
            t.value("ghost")

    def test_items_in_schema_order(self, schema):
        t = ExtendedTuple(schema, {"rating": "ex", "bldg_no": 600, "rname": "wok"})
        assert [name for name, _ in t.items()] == ["rname", "bldg_no", "rating"]

    def test_evidence_wraps_key(self, schema):
        t = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        assert t.evidence("rname").definite_value() == "wok"


class TestDerivations:
    def test_with_membership(self, schema):
        t = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        revised = t.with_membership(("1/2", "1/2"))
        assert revised.membership == TupleMembership("1/2", "1/2")
        assert t.membership == CERTAIN  # original untouched

    def test_with_values(self, schema):
        t = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        changed = t.with_values({"rating": "gd"})
        assert changed.evidence("rating").definite_value() == "gd"
        assert changed.key() == t.key()

    def test_project(self, schema):
        t = ExtendedTuple(
            schema,
            {"rname": "wok", "bldg_no": 600, "rating": "ex"},
            ("1/2", 1),
        )
        projected_schema = schema.project(["rname", "rating"])
        p = t.project(projected_schema)
        assert p.key() == ("wok",)
        assert p.membership == TupleMembership("1/2", 1)
        with pytest.raises(SchemaError):
            p.value("bldg_no")

    def test_renamed(self, schema):
        renamed_schema = schema.rename_attributes({"rating": "stars"})
        t = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        r = t.renamed(renamed_schema, {"rating": "stars"})
        assert r.evidence("stars").definite_value() == "ex"


class TestEquality:
    def test_equal_tuples(self, schema):
        a = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        b = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        assert a == b
        assert hash(a) == hash(b)

    def test_membership_matters(self, schema):
        a = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        b = a.with_membership(("1/2", 1))
        assert a != b

    def test_value_matters(self, schema):
        a = ExtendedTuple(schema, {"rname": "wok", "bldg_no": 600, "rating": "ex"})
        b = a.with_values({"rating": "gd"})
        assert a != b
