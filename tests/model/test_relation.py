"""Tests for extended relations (CWA_ER enforcement, keys, derivations)."""

import pytest

from repro.errors import RelationError
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.membership import TupleMembership
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema


@pytest.fixture
def schema():
    return RelationSchema(
        "R",
        [
            Attribute("k", TextDomain("k"), key=True),
            Attribute(
                "v", EnumeratedDomain("v", ["x", "y", "z"]), uncertain=True
            ),
        ],
    )


def _t(schema, key, value="x", membership=(1, 1)):
    return ExtendedTuple(schema, {"k": key, "v": value}, membership)


class TestCwaEr:
    def test_supported_tuples_accepted(self, schema):
        relation = ExtendedRelation(schema, [_t(schema, "a", membership=("1/2", 1))])
        assert len(relation) == 1

    def test_unsupported_raises_by_default(self, schema):
        with pytest.raises(RelationError, match="CWA_ER"):
            ExtendedRelation(schema, [_t(schema, "a", membership=(0, 1))])

    def test_drop_policy_filters(self, schema):
        relation = ExtendedRelation(
            schema,
            [_t(schema, "a"), _t(schema, "b", membership=(0, 1))],
            on_unsupported="drop",
        )
        assert relation.keys() == (("a",),)

    def test_allow_policy_admits(self, schema):
        relation = ExtendedRelation(
            schema,
            [_t(schema, "a", membership=(0, 1))],
            on_unsupported="allow",
        )
        assert len(relation) == 1

    def test_unknown_policy_rejected(self, schema):
        with pytest.raises(RelationError, match="on_unsupported"):
            ExtendedRelation(schema, [], on_unsupported="explode")


class TestKeys:
    def test_duplicate_keys_rejected(self, schema):
        with pytest.raises(RelationError, match="duplicate key"):
            ExtendedRelation(schema, [_t(schema, "a"), _t(schema, "a", value="y")])

    def test_get_by_key(self, schema):
        relation = ExtendedRelation(schema, [_t(schema, "a")])
        assert relation.get(("a",)).key() == ("a",)
        assert relation.get(("missing",)) is None

    def test_get_scalar_key_convenience(self, schema):
        relation = ExtendedRelation(schema, [_t(schema, "a")])
        assert relation.get("a") is relation.get(("a",))
        assert "a" in relation

    def test_schema_mismatch_rejected(self, schema):
        # Same attributes but a different declaration order: the tuple's
        # schema no longer matches the relation's.
        other = RelationSchema(
            "S",
            [
                Attribute(
                    "v", EnumeratedDomain("v", ["x", "y", "z"]), uncertain=True
                ),
                Attribute("k", TextDomain("k"), key=True),
            ],
        )
        with pytest.raises(RelationError, match="does not match"):
            ExtendedRelation(schema, [_t(other, "a")])

    def test_non_tuple_input_rejected(self, schema):
        with pytest.raises(RelationError):
            ExtendedRelation(schema, ["not a tuple"])


class TestFromRows:
    def test_mappings_default_certain(self, schema):
        relation = ExtendedRelation.from_rows(schema, [{"k": "a", "v": "x"}])
        assert relation.get("a").membership.is_certain

    def test_pairs_with_membership(self, schema):
        relation = ExtendedRelation.from_rows(
            schema, [({"k": "a", "v": "x"}, ("1/2", 1))]
        )
        assert relation.get("a").membership == TupleMembership("1/2", 1)


class TestDerivations:
    def test_with_name(self, schema):
        relation = ExtendedRelation(schema, [_t(schema, "a")])
        renamed = relation.with_name("S")
        assert renamed.name == "S"
        assert renamed.get("a").evidence("v").definite_value() == "x"

    def test_with_name_preserves_allow_policy(self, schema):
        relation = ExtendedRelation(
            schema, [_t(schema, "a", membership=(0, 1))], on_unsupported="allow"
        )
        assert len(relation.with_name("S")) == 1

    def test_add(self, schema):
        relation = ExtendedRelation(schema, [_t(schema, "a")])
        grown = relation.add(_t(schema, "b"))
        assert len(grown) == 2
        assert len(relation) == 1

    def test_filter(self, schema):
        relation = ExtendedRelation(schema, [_t(schema, "a"), _t(schema, "b")])
        kept = relation.filter(lambda t: t.key() == ("a",))
        assert kept.keys() == (("a",),)

    def test_map_tuples(self, schema):
        relation = ExtendedRelation(schema, [_t(schema, "a")])
        mapped = relation.map_tuples(lambda t: t.with_values({"v": "y"}))
        assert mapped.get("a").evidence("v").definite_value() == "y"

    def test_to_float(self, schema):
        relation = ExtendedRelation(
            schema, [_t(schema, "a", membership=("1/2", 1))]
        )
        floated = relation.to_float()
        assert isinstance(floated.get("a").membership.sn, float)


class TestComparison:
    def test_same_tuples_ignores_name(self, schema):
        a = ExtendedRelation(schema, [_t(schema, "a")])
        b = a.with_name("Other")
        assert a.same_tuples(b)
        assert a != b  # full equality includes the schema name

    def test_same_tuples_detects_value_change(self, schema):
        a = ExtendedRelation(schema, [_t(schema, "a")])
        b = ExtendedRelation(schema, [_t(schema, "a", value="y")])
        assert not a.same_tuples(b)

    def test_same_tuples_detects_key_difference(self, schema):
        a = ExtendedRelation(schema, [_t(schema, "a")])
        b = ExtendedRelation(schema, [_t(schema, "b")])
        assert not a.same_tuples(b)

    def test_equality_and_hash(self, schema):
        a = ExtendedRelation(schema, [_t(schema, "a")])
        b = ExtendedRelation(schema, [_t(schema, "a")])
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_order_is_insertion(self, schema):
        relation = ExtendedRelation(
            schema, [_t(schema, "b"), _t(schema, "a"), _t(schema, "c")]
        )
        assert [t.key()[0] for t in relation] == ["b", "a", "c"]
