"""Tests for attributes and schemas."""

import pytest

from repro.errors import SchemaError
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, TextDomain
from repro.model.schema import RelationSchema


def _text(name, key=False, uncertain=False):
    return Attribute(name, TextDomain(name), key=key, uncertain=uncertain)


class TestAttribute:
    def test_display_name_prefixes_uncertain(self):
        speciality = Attribute(
            "speciality", EnumeratedDomain("speciality", ["si"]), uncertain=True
        )
        assert speciality.display_name == "yspeciality"
        assert speciality.name == "speciality"

    def test_certain_display_name_unchanged(self):
        assert _text("rname").display_name == "rname"

    def test_key_cannot_be_uncertain(self):
        with pytest.raises(SchemaError, match="cannot be uncertain"):
            Attribute("k", TextDomain("k"), key=True, uncertain=True)

    def test_needs_domain(self):
        with pytest.raises(SchemaError):
            Attribute("a", "not a domain")

    def test_needs_name(self):
        with pytest.raises(SchemaError):
            Attribute("", TextDomain("t"))

    def test_renamed(self):
        a = _text("old", uncertain=True)
        b = a.renamed("new")
        assert b.name == "new"
        assert b.uncertain

    def test_as_key_roundtrip(self):
        a = _text("a")
        assert a.as_key().key
        assert not a.as_key().as_nonkey().key

    def test_compatibility(self):
        assert _text("a").compatible_with(_text("a"))
        assert not _text("a").compatible_with(_text("b"))
        assert not _text("a").compatible_with(_text("a", key=True))
        assert not _text("a").compatible_with(_text("a", uncertain=True))

    def test_equality_and_hash(self):
        assert _text("a") == _text("a")
        assert hash(_text("a")) == hash(_text("a"))


class TestSchemaBasics:
    def test_construction(self):
        schema = RelationSchema("R", [_text("k", key=True), _text("v")])
        assert schema.names == ("k", "v")
        assert schema.key_names == ("k",)
        assert schema.nonkey_names == ("v",)

    def test_uncertain_names(self):
        schema = RelationSchema(
            "R", [_text("k", key=True), _text("u", uncertain=True), _text("c")]
        )
        assert schema.uncertain_names == ("u",)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("R", [_text("a", key=True), _text("a")])

    def test_key_required(self):
        with pytest.raises(SchemaError, match="key attribute"):
            RelationSchema("R", [_text("a")])

    def test_attribute_lookup(self):
        schema = RelationSchema("R", [_text("k", key=True)])
        assert schema.attribute("k").name == "k"
        with pytest.raises(SchemaError, match="no attribute"):
            schema.attribute("missing")

    def test_contains(self):
        schema = RelationSchema("R", [_text("k", key=True)])
        assert "k" in schema
        assert "x" not in schema

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", [])


class TestUnionCompatibility:
    def test_same_attributes_any_order(self):
        a = RelationSchema("A", [_text("k", key=True), _text("v")])
        b = RelationSchema("B", [_text("v"), _text("k", key=True)])
        assert a.union_compatible(b)

    def test_different_names_incompatible(self):
        a = RelationSchema("A", [_text("k", key=True), _text("v")])
        b = RelationSchema("B", [_text("k", key=True), _text("w")])
        assert not a.union_compatible(b)

    def test_different_keys_incompatible(self):
        a = RelationSchema("A", [_text("k", key=True), _text("v")])
        b = RelationSchema("B", [_text("k"), _text("v", key=True)])
        assert not a.union_compatible(b)

    def test_require_raises(self):
        a = RelationSchema("A", [_text("k", key=True)])
        b = RelationSchema("B", [_text("j", key=True)])
        with pytest.raises(SchemaError, match="not\\s+union-compatible"):
            a.require_union_compatible(b)


class TestProjection:
    def test_keeps_requested_order(self):
        schema = RelationSchema(
            "R", [_text("k", key=True), _text("a"), _text("b")]
        )
        projected = schema.project(["b", "k"])
        assert projected.names == ("b", "k")

    def test_must_retain_keys(self):
        schema = RelationSchema("R", [_text("k", key=True), _text("a")])
        with pytest.raises(SchemaError, match="retain key"):
            schema.project(["a"])

    def test_unknown_attribute_rejected(self):
        schema = RelationSchema("R", [_text("k", key=True)])
        with pytest.raises(SchemaError, match="unknown"):
            schema.project(["k", "ghost"])

    def test_duplicates_rejected(self):
        schema = RelationSchema("R", [_text("k", key=True), _text("a")])
        with pytest.raises(SchemaError, match="twice"):
            schema.project(["k", "a", "a"])


class TestRenameAndConcat:
    def test_rename(self):
        schema = RelationSchema("R", [_text("k", key=True), _text("a")])
        renamed = schema.rename_attributes({"a": "b"})
        assert renamed.names == ("k", "b")

    def test_rename_unknown_rejected(self):
        schema = RelationSchema("R", [_text("k", key=True)])
        with pytest.raises(SchemaError):
            schema.rename_attributes({"ghost": "x"})

    def test_concat_disjoint(self):
        a = RelationSchema("A", [_text("k", key=True), _text("x")])
        b = RelationSchema("B", [_text("j", key=True), _text("y")])
        product = a.concat(b)
        assert product.names == ("k", "x", "j", "y")
        assert set(product.key_names) == {"k", "j"}

    def test_concat_prefixes_clashes(self):
        a = RelationSchema("A", [_text("k", key=True), _text("x")])
        b = RelationSchema("B", [_text("k", key=True), _text("y")])
        product = a.concat(b)
        assert "A_k" in product
        assert "B_k" in product
        assert set(product.key_names) == {"A_k", "B_k"}

    def test_concat_name(self):
        a = RelationSchema("A", [_text("k", key=True)])
        b = RelationSchema("B", [_text("j", key=True)])
        assert a.concat(b).name == "A_x_B"
        assert a.concat(b, "P").name == "P"
