"""Tests for attribute domains."""

import pytest

from repro.errors import DomainError
from repro.model.domain import (
    AnyDomain,
    BooleanDomain,
    EnumeratedDomain,
    NumericDomain,
    TextDomain,
)


class TestEnumeratedDomain:
    def test_membership(self):
        rating = EnumeratedDomain("rating", ["ex", "gd", "avg"])
        assert rating.contains("ex")
        assert not rating.contains("terrible")

    def test_is_enumerable_with_frame(self):
        rating = EnumeratedDomain("rating", ["ex", "gd"])
        assert rating.is_enumerable
        assert rating.frame().values == frozenset({"ex", "gd"})

    def test_validate_raises(self):
        rating = EnumeratedDomain("rating", ["ex"])
        with pytest.raises(DomainError, match="outside domain"):
            rating.validate("bad")

    def test_validate_passthrough(self):
        rating = EnumeratedDomain("rating", ["ex"])
        assert rating.validate("ex") == "ex"

    def test_len_and_iter(self):
        d = EnumeratedDomain("d", ["b", "a"])
        assert len(d) == 2
        assert list(d) == sorted(list(d))

    def test_equality_by_name_and_values(self):
        a = EnumeratedDomain("d", ["x", "y"])
        b = EnumeratedDomain("d", ["y", "x"])
        c = EnumeratedDomain("d", ["x"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            EnumeratedDomain("d", [])


class TestBooleanDomain:
    def test_values(self):
        b = BooleanDomain()
        assert b.contains(True)
        assert b.contains(False)
        assert not b.contains("true")


class TestNumericDomain:
    def test_unbounded(self):
        d = NumericDomain("n")
        assert d.contains(5)
        assert d.contains(-3.5)
        assert not d.contains("5")

    def test_bounds(self):
        d = NumericDomain("n", low=0, high=10)
        assert d.contains(0)
        assert d.contains(10)
        assert not d.contains(-1)
        assert not d.contains(11)

    def test_integral(self):
        d = NumericDomain("n", integral=True)
        assert d.contains(5)
        assert not d.contains(5.5)

    def test_bool_is_not_a_number(self):
        assert not NumericDomain("n").contains(True)

    def test_bad_bounds_rejected(self):
        with pytest.raises(DomainError):
            NumericDomain("n", low=10, high=0)

    def test_not_enumerable(self):
        d = NumericDomain("n")
        assert not d.is_enumerable
        assert d.frame() is None


class TestTextDomain:
    def test_any_string(self):
        d = TextDomain("t")
        assert d.contains("hello")
        assert not d.contains(5)

    def test_pattern(self):
        phone = TextDomain("phone", pattern=r"\d{3}-\d{4}")
        assert phone.contains("371-2155")
        assert not phone.contains("3712155")
        assert not phone.contains("371-21556")

    def test_equality_includes_pattern(self):
        a = TextDomain("t", pattern=r"\d+")
        b = TextDomain("t", pattern=r"\d+")
        c = TextDomain("t")
        assert a == b
        assert a != c


class TestAnyDomain:
    def test_accepts_hashables(self):
        d = AnyDomain()
        assert d.contains("x")
        assert d.contains(5)
        assert d.contains(("a", 1))

    def test_rejects_unhashable(self):
        assert not AnyDomain().contains(["list"])
