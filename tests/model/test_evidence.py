"""Tests for evidence sets (domain-aware uncertain attribute values)."""

from fractions import Fraction

import pytest

from repro.errors import DomainError, MassFunctionError
from repro.ds.frame import OMEGA
from repro.ds.mass import MassFunction
from repro.model.domain import EnumeratedDomain, NumericDomain, TextDomain
from repro.model.evidence import EvidenceSet


@pytest.fixture
def speciality():
    return EnumeratedDomain("speciality", ["am", "hu", "si", "ca", "mu", "it", "ta"])


class TestConstruction:
    def test_from_bracket_notation(self, speciality):
        es = EvidenceSet("[si^0.5, hu^0.25, Ω^0.25]", speciality)
        assert es.mass({"si"}) == Fraction(1, 2)
        assert es.domain == speciality

    def test_from_mapping(self, speciality):
        es = EvidenceSet({"si": 1}, speciality)
        assert es.is_definite()

    def test_from_mass_function(self, speciality):
        es = EvidenceSet(MassFunction({"si": 1}), speciality)
        assert es.definite_value() == "si"

    def test_rejects_garbage(self):
        with pytest.raises(MassFunctionError):
            EvidenceSet(42)

    def test_enumerable_domain_attaches_frame(self, speciality):
        es = EvidenceSet({"si": 1}, speciality)
        assert es.mass_function.frame == speciality.frame()

    def test_enumerable_domain_validates_values(self, speciality):
        with pytest.raises(Exception):
            EvidenceSet({"sushi": 1}, speciality)

    def test_open_domain_validates_values(self):
        numeric = NumericDomain("score", low=0, high=10)
        EvidenceSet({frozenset({3, 4}): 1}, numeric)  # fine
        with pytest.raises(DomainError):
            EvidenceSet({frozenset({42}): 1}, numeric)

    def test_open_domain_allows_omega(self):
        numeric = NumericDomain("score")
        es = EvidenceSet({OMEGA: 1}, numeric)
        assert es.is_vacuous()

    def test_domainless(self):
        es = EvidenceSet({"anything": 1})
        assert es.domain is None


class TestConstructors:
    def test_definite(self, speciality):
        es = EvidenceSet.definite("si", speciality)
        assert es.is_definite()
        assert es.definite_value() == "si"

    def test_vacuous(self, speciality):
        es = EvidenceSet.vacuous(speciality)
        assert es.is_vacuous()
        assert es.ignorance() == 1

    def test_from_counts(self, speciality):
        es = EvidenceSet.from_counts({"si": 2, "hu": 4}, speciality)
        assert es.mass({"si"}) == Fraction(1, 3)

    def test_parse(self, speciality):
        es = EvidenceSet.parse("[mu^0.8, ta^0.2]", speciality)
        assert es.mass({"ta"}) == Fraction(1, 5)


class TestMeasures:
    def test_bel_pls(self, speciality):
        es = EvidenceSet("[si^0.5, hu^0.25, Ω^0.25]", speciality)
        assert es.bel({"si"}) == Fraction(1, 2)
        assert es.pls({"si"}) == Fraction(3, 4)

    def test_framed_omega_in_bel(self, speciality):
        es = EvidenceSet("[si^0.5, Ω^0.5]", speciality)
        # With the enumerated frame, the full value set includes OMEGA.
        assert es.bel(speciality.frame().values) == 1


class TestCombination:
    def test_paper_garden_speciality(self, speciality):
        a = EvidenceSet("[si^1/2, hu^1/4, Ω^1/4]", speciality)
        b = EvidenceSet("[si^1/2, hu^3/10, Ω^1/5]", speciality)
        combined = a.combine(b)
        assert combined.mass({"si"}) == Fraction(19, 29)
        assert combined.mass({"hu"}) == Fraction(8, 29)
        assert combined.ignorance() == Fraction(2, 29)

    def test_mismatched_domains_rejected(self, speciality):
        other = EnumeratedDomain("rating", ["ex", "gd"])
        a = EvidenceSet({"si": 1}, speciality)
        b = EvidenceSet({"ex": 1}, other)
        with pytest.raises(Exception):
            a.combine(b)

    def test_domainless_combines_with_domained(self, speciality):
        a = EvidenceSet({"si": 1})
        b = EvidenceSet({"si": "1/2", "hu": "1/2"}, speciality)
        combined = b.combine(a)
        assert combined.definite_value() == "si"
        assert combined.domain == speciality


class TestConversionsAndEquality:
    def test_float_round_trip(self, speciality):
        es = EvidenceSet("[si^0.5, hu^0.5]", speciality)
        assert es.to_float().to_exact() == es

    def test_format(self, speciality):
        es = EvidenceSet("[si^0.5, hu^0.25, Ω^0.25]", speciality)
        assert es.format() == "[hu^0.25, si^0.5, Ω^0.25]"

    def test_equality_ignores_domain_object_identity(self, speciality):
        a = EvidenceSet({"si": 1}, speciality)
        b = EvidenceSet(
            {"si": 1},
            EnumeratedDomain("speciality", ["am", "hu", "si", "ca", "mu", "it", "ta"]),
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_contains_notation(self, speciality):
        es = EvidenceSet({"si": 1}, speciality)
        assert "[si^1]" in repr(es)
