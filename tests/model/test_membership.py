"""Tests for tuple membership (sn, sp) pairs and their combination rules."""

from fractions import Fraction

import pytest
from hypothesis import given

from repro.errors import MembershipError, TotalConflictError
from repro.ds.combination import combine
from repro.model.membership import (
    CERTAIN,
    IMPOSSIBLE,
    UNKNOWN,
    TupleMembership,
)
from tests.conftest import memberships, supported_memberships


class TestConstruction:
    def test_valid_pair(self):
        tm = TupleMembership("1/4", "3/4")
        assert tm.sn == Fraction(1, 4)
        assert tm.sp == Fraction(3, 4)

    def test_invalid_order_rejected(self):
        with pytest.raises(MembershipError):
            TupleMembership("3/4", "1/4")

    def test_out_of_range_rejected(self):
        with pytest.raises(MembershipError):
            TupleMembership(-0.1, 0.5)
        with pytest.raises(MembershipError):
            TupleMembership(0.5, 1.5)

    def test_constants(self):
        assert CERTAIN.as_tuple() == (1, 1)
        assert UNKNOWN.as_tuple() == (0, 1)
        assert IMPOSSIBLE.as_tuple() == (0, 0)

    def test_flags(self):
        assert CERTAIN.is_certain
        assert not CERTAIN.is_impossible
        assert IMPOSSIBLE.is_impossible
        assert not UNKNOWN.is_supported
        assert TupleMembership("1/2", 1).is_supported


class TestMassViews:
    def test_mass_decomposition(self):
        tm = TupleMembership("1/4", "3/4")
        assert tm.m_true == Fraction(1, 4)
        assert tm.m_false == Fraction(1, 4)
        assert tm.m_unknown == Fraction(1, 2)

    def test_to_mass_round_trip(self):
        tm = TupleMembership("1/3", "2/3")
        assert TupleMembership.from_mass(tm.to_mass()) == tm

    def test_mass_over_boolean_frame(self):
        m = TupleMembership("1/3", "2/3").to_mass()
        assert m.mass({True}) == Fraction(1, 3)
        assert m.mass({False}) == Fraction(1, 3)


class TestDempsterCombination:
    def test_paper_table4_mehl(self):
        """(0.5, 0.5) (+) (0.8, 1) = (5/6, 5/6), printed (0.83, 0.83)."""
        combined = TupleMembership("1/2", "1/2").combine_dempster(
            TupleMembership("4/5", 1)
        )
        assert combined == TupleMembership(Fraction(5, 6), Fraction(5, 6))

    def test_certain_is_absorbing_with_consistency(self):
        assert CERTAIN.combine_dempster(TupleMembership("1/2", 1)) == CERTAIN

    def test_unknown_is_identity(self):
        tm = TupleMembership("1/3", "3/4")
        assert tm.combine_dempster(UNKNOWN) == tm
        assert UNKNOWN.combine_dempster(tm) == tm

    def test_total_conflict(self):
        with pytest.raises(TotalConflictError):
            CERTAIN.combine_dempster(IMPOSSIBLE)

    def test_agreeing_impossibles(self):
        assert IMPOSSIBLE.combine_dempster(IMPOSSIBLE) == IMPOSSIBLE

    def test_closed_form_matches_generic_dempster(self):
        """The closed-form F must agree with the generic rule on the
        boolean frame."""
        pairs = [
            (TupleMembership("1/2", "1/2"), TupleMembership("4/5", 1)),
            (TupleMembership("1/4", "3/4"), TupleMembership("1/3", "2/3")),
            (TupleMembership(0, "1/2"), TupleMembership("1/2", 1)),
            (TupleMembership("1/10", "9/10"), TupleMembership("2/5", "3/5")),
        ]
        for a, b in pairs:
            expected = TupleMembership.from_mass(combine(a.to_mass(), b.to_mass()))
            assert a.combine_dempster(b) == expected


class TestProductCombination:
    def test_paper_table2_garden(self):
        """(1,1) x (1/2, 3/4) = (0.5, 0.75)."""
        revised = CERTAIN.combine_product(TupleMembership("1/2", "3/4"))
        assert revised == TupleMembership(Fraction(1, 2), Fraction(3, 4))

    def test_paper_table3_mehl(self):
        """(1/2,1/2) x (16/25, 16/25) = (8/25, 8/25) = (0.32, 0.32)."""
        support = TupleMembership("4/5", "4/5").combine_product(
            TupleMembership("4/5", "4/5")
        )
        revised = TupleMembership("1/2", "1/2").combine_product(support)
        assert revised == TupleMembership(Fraction(8, 25), Fraction(8, 25))

    def test_certain_is_identity(self):
        tm = TupleMembership("1/3", "2/3")
        assert tm.combine_product(CERTAIN) == tm

    def test_impossible_is_absorbing(self):
        tm = TupleMembership("1/3", "2/3")
        assert tm.combine_product(IMPOSSIBLE) == IMPOSSIBLE


class TestDisjunctionAndNegation:
    def test_disjunction(self):
        a = TupleMembership("1/2", "1/2")
        b = TupleMembership("1/2", "1/2")
        assert a.combine_disjunction(b) == TupleMembership("3/4", "3/4")

    def test_negate(self):
        tm = TupleMembership("1/4", "3/4")
        assert tm.negate() == TupleMembership("1/4", "3/4")
        assert CERTAIN.negate() == IMPOSSIBLE

    def test_double_negation(self):
        tm = TupleMembership("1/5", "4/5")
        assert tm.negate().negate() == tm


class TestConversions:
    def test_float_round_trip(self):
        tm = TupleMembership("1/4", "3/4")
        assert tm.to_float().to_exact() == tm

    def test_format(self):
        assert TupleMembership("1/2", "3/4").format(style="decimal") == "(0.5,0.75)"
        assert CERTAIN.format(style="decimal") == "(1.0,1.0)"

    def test_iteration(self):
        sn, sp = TupleMembership("1/4", "1/2")
        assert (sn, sp) == (Fraction(1, 4), Fraction(1, 2))


# ---------------------------------------------------------------------------
# Property-based checks
# ---------------------------------------------------------------------------


@given(a=memberships(), b=memberships())
def test_product_stays_in_bounds(a, b):
    combined = a.combine_product(b)
    assert 0 <= combined.sn <= combined.sp <= 1


@given(a=memberships(), b=memberships())
def test_dempster_stays_in_bounds(a, b):
    try:
        combined = a.combine_dempster(b)
    except TotalConflictError:
        return
    assert 0 <= combined.sn <= combined.sp <= 1


@given(a=memberships(), b=memberships())
def test_dempster_commutative(a, b):
    try:
        left = a.combine_dempster(b)
    except TotalConflictError:
        left = None
    try:
        right = b.combine_dempster(a)
    except TotalConflictError:
        right = None
    assert left == right


@given(a=memberships(), b=memberships(), c=memberships())
def test_dempster_associative(a, b, c):
    def fold(x, y, z):
        try:
            return x.combine_dempster(y).combine_dempster(z)
        except TotalConflictError:
            return None

    left = fold(a, b, c)
    try:
        right = a.combine_dempster(b.combine_dempster(c))
    except TotalConflictError:
        right = None
    if left is not None and right is not None:
        assert left == right


@given(a=memberships(), b=memberships())
def test_dempster_matches_generic_rule(a, b):
    """Closed form == generic Dempster on the boolean frame, always."""
    try:
        closed = a.combine_dempster(b)
    except TotalConflictError:
        closed = None
    try:
        generic = TupleMembership.from_mass(combine(a.to_mass(), b.to_mass()))
    except TotalConflictError:
        generic = None
    assert closed == generic


@given(a=supported_memberships(), b=supported_memberships())
def test_dempster_preserves_positive_support(a, b):
    """sn1 > 0 and sn2 > 0 imply combined sn > 0 (closure ingredient)."""
    combined = a.combine_dempster(b)  # kappa < 1 since both sp > 0
    assert combined.sn > 0


@given(a=memberships(), b=memberships())
def test_product_commutative_associative_sample(a, b):
    assert a.combine_product(b) == b.combine_product(a)
