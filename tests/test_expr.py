"""The fluent lazy expression API (repro.expr)."""

import pytest

from repro.errors import CatalogError, PlanError
from repro.algebra import (
    attr,
    intersection,
    join,
    product,
    project,
    rename,
    select,
    sn_at_least,
    union,
)
from repro.expr import RelExpr
from repro.storage import Database
from repro.datasets.restaurants import (
    expected_table2,
    expected_table4,
    table_ra,
    table_rb,
    table_rm_a,
)


@pytest.fixture
def db():
    database = Database("tourist_bureau")
    database.add(table_ra())
    database.add(table_rb())
    database.add(table_rm_a())
    return database


class TestBuilding:
    def test_rel_returns_expression(self, db):
        expr = db.rel("RA")
        assert isinstance(expr, RelExpr)

    def test_rel_unknown_name_fails_eagerly_with_hint(self, db):
        with pytest.raises(CatalogError, match="did you mean 'RA'"):
            db.rel("RAA")

    def test_expressions_are_immutable(self, db):
        base = db.rel("RA")
        derived = base.select(attr("speciality").is_({"si"}))
        assert base.key() != derived.key()
        assert base.collect().same_tuples(table_ra())

    def test_shared_prefix_reuse(self, db):
        base = db.rel("RA").select(attr("speciality").is_({"si"}))
        names = base.project("rname")
        merged = base.union(db.rel("RB").select(attr("speciality").is_({"si"})))
        assert names.key() != merged.key()
        assert base.key() in names.key()
        assert base.key() in merged.key()

    def test_select_rejects_non_predicate(self, db):
        with pytest.raises(PlanError):
            db.rel("RA").select("speciality IS {si}")

    def test_union_coerces_names_and_relations(self, db):
        via_name = db.rel("RA").union("RB")
        via_relation = db.rel("RA").union(table_rb())
        assert via_name.collect().same_tuples(via_relation.collect())

    def test_union_rejects_junk(self, db):
        with pytest.raises(PlanError):
            db.rel("RA").union(42)

    def test_repr_shows_chain(self, db):
        expr = db.rel("RA").project("rname", "rating")
        assert "project" in repr(expr)
        assert "scan RA" in repr(expr)


class TestCollect:
    def test_select_matches_paper_table2(self, db):
        result = db.rel("RA").select(attr("speciality").is_({"si"})).collect()
        assert result.same_tuples(expected_table2())

    def test_union_matches_paper_table4(self, db):
        result = db.rel("RA").union(db.rel("RB")).collect()
        assert result.same_tuples(expected_table4())

    def test_threshold_filters(self, db):
        loose = db.rel("RA").select(attr("rating").is_({"ex"})).collect()
        tight = (
            db.rel("RA")
            .select(attr("rating").is_({"ex"}), sn_at_least(1))
            .collect()
        )
        assert len(tight) < len(loose)

    def test_with_support_threshold_only(self, db):
        result = db.rel("RA").with_support(sn_at_least(1)).collect()
        assert result.get("mehl") is None
        assert len(result) == 5

    def test_join_over_product_schema_names(self, db):
        result = (
            db.rel("RA")
            .join("RM_A", on=attr("RA_rname") == attr("RM_A_rname"))
            .collect()
        )
        assert len(result) == len(table_rm_a())

    def test_rename_then_project(self, db):
        result = (
            db.rel("RA").rename({"rname": "restaurant"}).project("restaurant")
        ).collect()
        assert result.schema.names == ("restaurant",)

    def test_intersect(self, db):
        result = db.rel("RA").intersect(db.rel("RB")).collect()
        assert sorted(t.key()[0] for t in result) == [
            "country",
            "garden",
            "mehl",
            "olive",
            "wok",
        ]

    def test_schema_binds_without_executing(self, db):
        assert db.rel("RA").project("rname", "rating").schema().names == (
            "rname",
            "rating",
        )


class TestSqlEquivalence:
    """Fluent chains and query strings must produce identical results."""

    CASES = [
        (
            "SELECT rname FROM RA WHERE rating IS {ex}",
            lambda db: db.rel("RA").select(attr("rating").is_({"ex"})).project("rname"),
        ),
        (
            "SELECT * FROM RA WHERE speciality IS {si} AND rating IS {ex}",
            lambda db: db.rel("RA").select(
                attr("speciality").is_({"si"}) & attr("rating").is_({"ex"})
            ),
        ),
        (
            "RA UNION RB",
            lambda db: db.rel("RA").union(db.rel("RB")),
        ),
        (
            "SELECT * FROM (RA UNION RB) WHERE rating IS {gd} WITH SN >= 0.5",
            lambda db: db.rel("RA")
            .union(db.rel("RB"))
            .select(attr("rating").is_({"gd"}), sn_at_least("1/2")),
        ),
    ]

    @pytest.mark.parametrize("text,build", CASES, ids=[c[0] for c in CASES])
    def test_same_tuples(self, db, text, build):
        fluent = build(db).collect()
        assert fluent.same_tuples(db.query(text))

    def test_explain_matches_sql_explain(self, db):
        text = "SELECT rname, rating FROM RA WHERE rating IS {ex}"
        fluent = (
            db.rel("RA").select(attr("rating").is_({"ex"})).project("rname", "rating")
        )
        assert fluent.explain() == db.explain(text)


class TestEagerWrappers:
    """algebra.* stays eager but now routes through single-node plans."""

    def test_select_unchanged(self):
        result = select(table_ra(), attr("speciality").is_({"si"}))
        assert result.same_tuples(expected_table2())

    def test_select_name_kwarg(self):
        result = select(table_ra(), attr("speciality").is_({"si"}), name="S")
        assert result.name == "S"

    def test_project_unchanged(self):
        result = project(table_ra(), ["rname", "rating"], name="P")
        assert result.schema.names == ("rname", "rating")
        assert result.name == "P"

    def test_product_unchanged(self):
        result = product(table_ra(), table_rm_a())
        assert len(result) == len(table_ra()) * len(table_rm_a())

    def test_union_unchanged(self):
        assert union(table_ra(), table_rb(), name="R").name == "R"

    def test_intersection_unchanged(self):
        assert len(intersection(table_ra(), table_rb())) == 5

    def test_join_unchanged(self):
        result = join(
            table_ra(), table_rm_a(), attr("RA_rname") == attr("RM_A_rname")
        )
        assert len(result) == len(table_rm_a())

    def test_rename_unchanged(self):
        result = rename(table_ra(), {"rname": "restaurant"}, name="REN")
        assert "restaurant" in result.schema
        assert result.name == "REN"
