"""Tests for attribute integration methods."""

from fractions import Fraction

import pytest

from repro.errors import IntegrationError, TotalConflictError
from repro.ds.frame import OMEGA
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, NumericDomain
from repro.model.evidence import EvidenceSet
from repro.integration.methods import (
    AverageMethod,
    DisjunctiveMethod,
    EvidentialMethod,
    IntersectionMethod,
    MaxMethod,
    MinMethod,
    MixtureMethod,
    PreferLeftMethod,
    PreferRightMethod,
    get_method,
)


@pytest.fixture
def colour_attr():
    return Attribute(
        "colour", EnumeratedDomain("colour", ["r", "g", "b"]), uncertain=True
    )


@pytest.fixture
def score_attr():
    return Attribute("score", NumericDomain("score", low=0, high=100))


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_method("evidential"), EvidentialMethod)
        assert isinstance(get_method("average"), AverageMethod)

    def test_instance_passthrough(self):
        method = MixtureMethod()
        assert get_method(method) is method

    def test_unknown_name(self):
        with pytest.raises(IntegrationError, match="unknown integration method"):
            get_method("majority-vote")


class TestEvidential(object):
    def test_is_dempster(self, colour_attr):
        a = EvidenceSet({"r": "1/2", ("r", "g"): "1/2"}, colour_attr.domain)
        b = EvidenceSet({"r": "1/2", ("r", "g"): "1/2"}, colour_attr.domain)
        combined = EvidentialMethod().combine(a, b, colour_attr)
        assert combined == a.combine(b)


class TestPreference:
    def test_prefer_left(self, colour_attr):
        a = EvidenceSet.definite("r", colour_attr.domain)
        b = EvidenceSet.definite("g", colour_attr.domain)
        assert PreferLeftMethod().combine(a, b, colour_attr) is a
        assert PreferRightMethod().combine(a, b, colour_attr) is b


class TestAggregates:
    def test_average(self, score_attr):
        a = EvidenceSet.definite(10, score_attr.domain)
        b = EvidenceSet.definite(20, score_attr.domain)
        result = AverageMethod().combine(a, b, score_attr)
        assert result.definite_value() == 15

    def test_average_fractional(self, score_attr):
        a = EvidenceSet.definite(10, score_attr.domain)
        b = EvidenceSet.definite(15, score_attr.domain)
        result = AverageMethod().combine(a, b, score_attr)
        assert result.definite_value() == Fraction(25, 2)

    def test_average_on_integral_domain_spreads(self):
        attr = Attribute("n", NumericDomain("n", integral=True))
        a = EvidenceSet.definite(1, attr.domain)
        b = EvidenceSet.definite(2, attr.domain)
        result = AverageMethod().combine(a, b, attr)
        # 1.5 is not in the domain: the honest value is the pair {1, 2}.
        assert result.mass({1, 2}) == 1

    def test_min_max(self, score_attr):
        a = EvidenceSet.definite(10, score_attr.domain)
        b = EvidenceSet.definite(20, score_attr.domain)
        assert MinMethod().combine(a, b, score_attr).definite_value() == 10
        assert MaxMethod().combine(a, b, score_attr).definite_value() == 20

    def test_uncertain_input_rejected(self, score_attr):
        uncertain = EvidenceSet({frozenset({10, 20}): 1}, score_attr.domain)
        definite = EvidenceSet.definite(10, score_attr.domain)
        with pytest.raises(Exception):
            AverageMethod().combine(uncertain, definite, score_attr)

    def test_non_numeric_rejected(self, colour_attr):
        a = EvidenceSet.definite("r", colour_attr.domain)
        with pytest.raises(IntegrationError, match="numeric"):
            AverageMethod().combine(a, a, colour_attr)


class TestIntersection:
    def test_partial_value_combination(self, colour_attr):
        a = EvidenceSet({("r", "g"): 1}, colour_attr.domain)
        b = EvidenceSet({("g", "b"): 1}, colour_attr.domain)
        result = IntersectionMethod().combine(a, b, colour_attr)
        assert result.definite_value() == "g"

    def test_discards_probabilities(self, colour_attr):
        """DeMichiel keeps only the candidate sets: the cores intersect."""
        a = EvidenceSet({"r": "9/10", "g": "1/10"}, colour_attr.domain)
        b = EvidenceSet({"r": "1/10", "g": "9/10"}, colour_attr.domain)
        result = IntersectionMethod().combine(a, b, colour_attr)
        assert result.mass({"r", "g"}) == 1

    def test_disjoint_cores_conflict(self, colour_attr):
        a = EvidenceSet.definite("r", colour_attr.domain)
        b = EvidenceSet.definite("g", colour_attr.domain)
        with pytest.raises(TotalConflictError):
            IntersectionMethod().combine(a, b, colour_attr)

    def test_omega_core_is_identity(self, colour_attr):
        a = EvidenceSet.vacuous(colour_attr.domain)
        b = EvidenceSet({("r", "g"): 1}, colour_attr.domain)
        result = IntersectionMethod().combine(a, b, colour_attr)
        assert result.mass({"r", "g"}) == 1


class TestMixture:
    def test_retains_inconsistency(self, colour_attr):
        """Unlike Dempster, a value excluded by one source survives."""
        a = EvidenceSet.definite("r", colour_attr.domain)
        b = EvidenceSet.definite("g", colour_attr.domain)
        result = MixtureMethod().combine(a, b, colour_attr)
        assert result.mass({"r"}) == Fraction(1, 2)
        assert result.mass({"g"}) == Fraction(1, 2)

    def test_average_of_masses(self, colour_attr):
        a = EvidenceSet({"r": "1/2", "g": "1/2"}, colour_attr.domain)
        b = EvidenceSet({"r": 1}, colour_attr.domain)
        result = MixtureMethod().combine(a, b, colour_attr)
        assert result.mass({"r"}) == Fraction(3, 4)


class TestDisjunctive:
    def test_union_of_possibilities(self, colour_attr):
        a = EvidenceSet.definite("r", colour_attr.domain)
        b = EvidenceSet.definite("g", colour_attr.domain)
        result = DisjunctiveMethod().combine(a, b, colour_attr)
        assert result.mass({"r", "g"}) == 1

    def test_omega_absorbs(self, colour_attr):
        a = EvidenceSet.vacuous(colour_attr.domain)
        b = EvidenceSet.definite("g", colour_attr.domain)
        result = DisjunctiveMethod().combine(a, b, colour_attr)
        assert result.is_vacuous()
