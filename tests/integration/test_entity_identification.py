"""Tests for entity identification (key and similarity matching)."""

from fractions import Fraction

import pytest

from repro.errors import EntityIdentificationError
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.integration.entity_identification import (
    KeyMatcher,
    SimilarityMatcher,
    TupleMatching,
    evidence_agreement,
)
from repro.datasets.restaurants import table_ra, table_rb


class TestKeyMatcher:
    def test_paper_matching(self):
        matching = KeyMatcher().match(table_ra(), table_rb())
        assert len(matching.pairs) == 5
        assert matching.left_only == [("ashiana",)]
        assert matching.right_only == []

    def test_pairs_are_key_identical(self):
        matching = KeyMatcher().match(table_ra(), table_rb())
        for left_key, right_key in matching.pairs:
            assert left_key == right_key

    def test_key_attribute_mismatch_rejected(self):
        schema_a = RelationSchema(
            "A",
            [
                Attribute("k", TextDomain("k"), key=True),
                Attribute("v", TextDomain("v")),
            ],
        )
        schema_b = RelationSchema(
            "B",
            [
                Attribute("j", TextDomain("j"), key=True),
                Attribute("v", TextDomain("v")),
            ],
        )
        a = ExtendedRelation(
            schema_a, [ExtendedTuple(schema_a, {"k": "1", "v": "x"})]
        )
        b = ExtendedRelation(
            schema_b, [ExtendedTuple(schema_b, {"j": "1", "v": "x"})]
        )
        with pytest.raises(EntityIdentificationError):
            KeyMatcher().match(a, b)

    def test_one_to_one_validation(self):
        matching = TupleMatching(pairs=[(("a",), ("x",)), (("a",), ("y",))])
        with pytest.raises(EntityIdentificationError):
            matching.validate_one_to_one()


@pytest.fixture
def pair_schema():
    return RelationSchema(
        "P",
        [
            Attribute("id", TextDomain("id"), key=True),
            Attribute("street", TextDomain("street")),
            Attribute(
                "colour",
                EnumeratedDomain("colour", ["r", "g", "b"]),
                uncertain=True,
            ),
        ],
    )


def _row(schema, id_, street, colour):
    return ExtendedTuple(schema, {"id": id_, "street": street, "colour": colour})


class TestEvidenceAgreement:
    def test_equal_definite_values_agree_fully(self, pair_schema):
        a = _row(pair_schema, "1", "main", "r")
        b = _row(pair_schema, "2", "main", "r")
        assert evidence_agreement(a, b, "street") == 1
        assert evidence_agreement(a, b, "colour") == 1

    def test_different_definite_values_agree_zero(self, pair_schema):
        a = _row(pair_schema, "1", "main", "r")
        b = _row(pair_schema, "2", "side", "g")
        assert evidence_agreement(a, b, "street") == 0
        assert evidence_agreement(a, b, "colour") == 0

    def test_partial_overlap_is_nonconflict_mass(self, pair_schema):
        a = _row(pair_schema, "1", "main", {"r": "1/2", "g": "1/2"})
        b = _row(pair_schema, "2", "main", {"r": "1/2", "b": "1/2"})
        # kappa = 1/2*1/2 (r,g miss) ... compute: conflicts are (r,b),(g,r),(g,b)
        # = 3/4, agreement = 1/4.
        assert evidence_agreement(a, b, "colour") == Fraction(1, 4)


class TestSimilarityMatcher:
    def test_matches_despite_different_keys(self, pair_schema):
        left = ExtendedRelation(
            pair_schema,
            [
                _row(pair_schema, "L1", "main", "r"),
                _row(pair_schema, "L2", "side", "g"),
            ],
        )
        right = ExtendedRelation(
            pair_schema.with_name("Q"),
            [
                ExtendedTuple(
                    pair_schema.with_name("Q"),
                    {"id": "R1", "street": "main", "colour": "r"},
                ),
                ExtendedTuple(
                    pair_schema.with_name("Q"),
                    {"id": "R2", "street": "nowhere", "colour": "b"},
                ),
            ],
        )
        matcher = SimilarityMatcher({"street": 1, "colour": 1}, threshold="3/4")
        matching = matcher.match(left, right)
        assert matching.pairs == [(("L1",), ("R1",))]
        assert (("L2",)) in matching.left_only
        assert (("R2",)) in matching.right_only

    def test_greedy_prefers_best_score(self, pair_schema):
        left = ExtendedRelation(
            pair_schema,
            [_row(pair_schema, "L1", "main", {"r": "1/2", "g": "1/2"})],
        )
        right = ExtendedRelation(
            pair_schema.with_name("Q"),
            [
                ExtendedTuple(
                    pair_schema.with_name("Q"),
                    {"id": "exact", "street": "main", "colour": {"r": "1/2", "g": "1/2"}},
                ),
                ExtendedTuple(
                    pair_schema.with_name("Q"),
                    {"id": "partial", "street": "main", "colour": "b"},
                ),
            ],
        )
        matcher = SimilarityMatcher({"street": 1, "colour": 1}, threshold="1/2")
        matching = matcher.match(left, right)
        assert matching.pairs[0][1] == ("exact",)

    def test_one_to_one_enforced(self, pair_schema):
        tuples = [_row(pair_schema, f"L{i}", "main", "r") for i in range(2)]
        left = ExtendedRelation(pair_schema, tuples)
        right_schema = pair_schema.with_name("Q")
        right = ExtendedRelation(
            right_schema,
            [
                ExtendedTuple(
                    right_schema, {"id": "R1", "street": "main", "colour": "r"}
                )
            ],
        )
        matching = SimilarityMatcher({"street": 1, "colour": 1}).match(left, right)
        assert len(matching.pairs) == 1
        assert len(matching.left_only) == 1

    def test_custom_comparator(self, pair_schema):
        left = ExtendedRelation(pair_schema, [_row(pair_schema, "L1", "Main St", "r")])
        right_schema = pair_schema.with_name("Q")
        right = ExtendedRelation(
            right_schema,
            [
                ExtendedTuple(
                    right_schema, {"id": "R1", "street": "MAIN ST", "colour": "r"}
                )
            ],
        )
        def case_insensitive(a, b):
            return 1 if a.value("street").definite_value().lower() == b.value(
                "street"
            ).definite_value().lower() else 0

        matcher = SimilarityMatcher(
            {"street": 1, "colour": 1},
            threshold=1,
            comparators={"street": case_insensitive},
        )
        assert len(matcher.match(left, right).pairs) == 1

    def test_needs_weights(self):
        with pytest.raises(EntityIdentificationError):
            SimilarityMatcher({})

    def test_unknown_attribute_rejected(self, pair_schema):
        left = ExtendedRelation(pair_schema, [_row(pair_schema, "L1", "m", "r")])
        matcher = SimilarityMatcher({"ghost": 1})
        with pytest.raises(EntityIdentificationError):
            matcher.match(left, left.with_name("Q"))
