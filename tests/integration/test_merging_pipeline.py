"""Tests for tuple merging, domain mapping, preprocessing and the full
Figure 1 pipeline."""

from fractions import Fraction

import pytest

from repro.errors import IntegrationError
from repro.ds.frame import OMEGA
from repro.model.attribute import Attribute
from repro.model.domain import EnumeratedDomain, NumericDomain, TextDomain
from repro.model.etuple import ExtendedTuple
from repro.model.evidence import EvidenceSet
from repro.model.relation import ExtendedRelation
from repro.model.schema import RelationSchema
from repro.algebra import union
from repro.integration import (
    AttributeCorrespondence,
    AttributePreprocessor,
    DomainValueMapping,
    IntegrationPipeline,
    SchemaMapping,
    TupleMerger,
)
from repro.datasets.restaurants import (
    expected_table4,
    rating_domain,
    table_ra,
    table_rb,
)


class TestTupleMerger:
    def test_all_evidential_merge_equals_union(self):
        merged, _ = TupleMerger().merge(table_ra(), table_rb())
        assert merged.same_tuples(expected_table4())

    def test_per_attribute_method_override(self):
        merger = TupleMerger(methods={"best_dish": "prefer_left"})
        merged, _ = merger.merge(table_ra(), table_rb())
        garden = merged.get("garden")
        # best_dish kept from R_A; rating still Dempster-combined.
        assert garden.evidence("best_dish").mass({"d35", "d36"}) == Fraction(1, 2)
        assert garden.evidence("rating").mass({"ex"}) == Fraction(1, 7)

    def test_intersection_method(self):
        merger = TupleMerger(default_method="intersection")
        merged, _ = merger.merge(table_ra(), table_rb())
        garden = merged.get("garden")
        # Cores: {si,hu}+OMEGA vs {si,hu}+OMEGA -> with OMEGA present the
        # core is the whole domain... garden speciality cores both OMEGA-
        # containing, so vacuous; best_dish cores {d31,d35,d36} & {d31,d35}.
        assert garden.evidence("best_dish").mass({"d31", "d35"}) == 1

    def test_merge_report_summary(self):
        _, report = TupleMerger().merge(table_ra(), table_rb())
        assert "5 matched" in report.summary()

    def test_bad_conflict_policy(self):
        with pytest.raises(IntegrationError):
            TupleMerger(on_conflict="explode")

    def test_custom_matching_pairs_different_keys(self):
        schema = RelationSchema(
            "S",
            [
                Attribute("id", TextDomain("id"), key=True),
                Attribute(
                    "colour",
                    EnumeratedDomain("colour", ["r", "g"]),
                    uncertain=True,
                ),
            ],
        )
        left = ExtendedRelation(
            schema.with_name("L"),
            [
                ExtendedTuple(
                    schema.with_name("L"),
                    {"id": "L1", "colour": {"r": "1/2", OMEGA: "1/2"}},
                )
            ],
        )
        right = ExtendedRelation(
            schema.with_name("R"),
            [
                ExtendedTuple(
                    schema.with_name("R"),
                    {"id": "R1", "colour": {"r": "1/2", OMEGA: "1/2"}},
                )
            ],
        )
        from repro.integration.entity_identification import TupleMatching

        matching = TupleMatching(pairs=[(("L1",), ("R1",))])
        merged, report = TupleMerger().merge(left, right, matching)
        assert len(merged) == 1
        # The merged tuple carries the left key.
        assert merged.get("L1") is not None
        assert merged.get("L1").evidence("colour").mass({"r"}) == Fraction(3, 4)


class TestDomainMapping:
    @pytest.fixture
    def stars(self):
        return DomainValueMapping(
            "stars-to-rating",
            {5: "ex", 4: {"ex", "gd"}, 3: "gd", 2: "avg", 1: "avg"},
            target_domain=rating_domain(),
        )

    def test_one_to_one(self, stars):
        assert stars.map_value(5) == frozenset({"ex"})

    def test_one_to_many(self, stars):
        assert stars.map_value(4) == frozenset({"ex", "gd"})

    def test_unmapped_error(self, stars):
        with pytest.raises(IntegrationError, match="no entry"):
            stars.map_value(0)

    def test_unmapped_identity(self):
        mapping = DomainValueMapping("m", {}, unmapped="identity")
        assert mapping.map_value("x") == frozenset({"x"})

    def test_unmapped_ignore_needs_enumerable_domain(self):
        mapping = DomainValueMapping(
            "m", {}, target_domain=rating_domain(), unmapped="ignore"
        )
        assert mapping.map_value("anything") == rating_domain().frame().values

    def test_image_validated(self):
        with pytest.raises(IntegrationError, match="outside domain"):
            DomainValueMapping("m", {1: "terrible"}, target_domain=rating_domain())

    def test_map_evidence(self, stars):
        source = EvidenceSet({frozenset({5}): "1/2", frozenset({4}): "1/2"})
        mapped = stars.map_evidence(source)
        assert mapped.mass({"ex"}) == Fraction(1, 2)
        assert mapped.mass({"ex", "gd"}) == Fraction(1, 2)

    def test_transform_scalar_singleton(self, stars):
        transform = stars.as_transform()
        assert transform(5) == "ex"

    def test_transform_scalar_ambiguous_becomes_evidence(self, stars):
        transform = stars.as_transform()
        result = transform(4)
        assert isinstance(result, EvidenceSet)
        assert result.mass({"ex", "gd"}) == 1


class TestPreprocessing:
    @pytest.fixture
    def local_schema(self):
        return RelationSchema(
            "local",
            [
                Attribute("restaurant", TextDomain("restaurant"), key=True),
                Attribute("stars", NumericDomain("stars", low=1, high=5)),
            ],
        )

    @pytest.fixture
    def global_schema(self):
        return RelationSchema(
            "global",
            [
                Attribute("rname", TextDomain("rname"), key=True),
                Attribute("rating", rating_domain(), uncertain=True),
            ],
        )

    def test_rename_and_recode(self, local_schema, global_schema):
        stars = DomainValueMapping(
            "stars", {5: "ex", 4: {"ex", "gd"}, 3: "gd", 2: "avg", 1: "avg"},
            target_domain=rating_domain(),
        )

        def recode(value):
            # value arrives as a definite EvidenceSet for non-key attrs.
            return stars.map_evidence(value)

        mapping = SchemaMapping(
            global_schema,
            [
                AttributeCorrespondence("restaurant", "rname"),
                AttributeCorrespondence("stars", "rating", recode),
            ],
        )
        local = ExtendedRelation(
            local_schema,
            [
                ExtendedTuple(local_schema, {"restaurant": "wok", "stars": 4}),
                ExtendedTuple(local_schema, {"restaurant": "olive", "stars": 3}),
            ],
        )
        preprocessed = AttributePreprocessor(mapping).preprocess(local)
        assert preprocessed.schema.name == "global"
        wok = preprocessed.get("wok")
        assert wok.evidence("rating").mass({"ex", "gd"}) == 1
        olive = preprocessed.get("olive")
        assert olive.evidence("rating").definite_value() == "gd"

    def test_derivations(self, global_schema):
        vote_schema = RelationSchema(
            "votes",
            [
                Attribute("rname", TextDomain("rname"), key=True),
                Attribute("ex_votes", NumericDomain("ex_votes", integral=True)),
                Attribute("gd_votes", NumericDomain("gd_votes", integral=True)),
            ],
        )

        def consolidate(etuple):
            counts = {
                "ex": etuple.value("ex_votes").definite_value(),
                "gd": etuple.value("gd_votes").definite_value(),
            }
            return EvidenceSet.from_counts(
                {k: v for k, v in counts.items() if v}, rating_domain()
            )

        mapping = SchemaMapping(
            global_schema,
            [AttributeCorrespondence("rname", "rname")],
            derivations={"rating": consolidate},
        )
        votes = ExtendedRelation(
            vote_schema,
            [
                ExtendedTuple(
                    vote_schema, {"rname": "wok", "ex_votes": 2, "gd_votes": 4}
                )
            ],
        )
        preprocessed = AttributePreprocessor(mapping).preprocess(votes)
        rating = preprocessed.get("wok").evidence("rating")
        # The Section 1.2 example: votes 2/4 -> [ex^0.33, gd^0.67].
        assert rating.mass({"ex"}) == Fraction(1, 3)
        assert rating.mass({"gd"}) == Fraction(2, 3)

    def test_uncovered_target_rejected(self, global_schema):
        with pytest.raises(IntegrationError, match="uncovered"):
            SchemaMapping(
                global_schema, [AttributeCorrespondence("rname", "rname")]
            )

    def test_double_cover_rejected(self, global_schema):
        with pytest.raises(IntegrationError, match="twice"):
            SchemaMapping(
                global_schema,
                [
                    AttributeCorrespondence("a", "rname"),
                    AttributeCorrespondence("b", "rname"),
                    AttributeCorrespondence("c", "rating"),
                ],
            )

    def test_identity_mapping(self):
        from repro.datasets.restaurants import restaurant_schema

        mapping = SchemaMapping.identity(restaurant_schema("G"))
        preprocessed = AttributePreprocessor(mapping).preprocess(table_ra())
        assert preprocessed.name == "G"
        assert len(preprocessed) == 6


class TestPipeline:
    def test_reproduces_table4(self):
        result = IntegrationPipeline().run(table_ra(), table_rb())
        assert result.integrated.same_tuples(expected_table4())
        assert len(result.matching.pairs) == 5

    def test_result_carries_intermediates(self):
        result = IntegrationPipeline().run(table_ra(), table_rb())
        assert result.preprocessed_left.same_tuples(table_ra())
        assert "5 matched" in result.report.summary()

    def test_reliability_discounting_weakens_right(self):
        trusted = IntegrationPipeline().run(table_ra(), table_rb())
        distrusted = IntegrationPipeline(reliabilities=(1, "1/2")).run(
            table_ra(), table_rb()
        )
        # garden speciality: discounted R_B pulls the combination toward
        # R_A's masses and keeps more ignorance.
        full = trusted.integrated.get("garden").evidence("speciality")
        weak = distrusted.integrated.get("garden").evidence("speciality")
        assert weak.ignorance() > full.ignorance()

    def test_zero_reliability_makes_source_vacuous(self):
        result = IntegrationPipeline(reliabilities=(1, 0)).run(
            table_ra(), table_rb()
        )
        # With R_B fully discounted, matched tuples equal R_A's evidence...
        garden = result.integrated.get("garden")
        original = table_ra().get("garden")
        for name in ("speciality", "best_dish", "rating"):
            assert garden.evidence(name) == original.evidence(name)

    def test_bad_reliabilities(self):
        with pytest.raises(IntegrationError):
            IntegrationPipeline(reliabilities=(1,))
        with pytest.raises(IntegrationError):
            IntegrationPipeline(reliabilities=(1, 2))

    def test_pipeline_result_name(self):
        result = IntegrationPipeline().run(table_ra(), table_rb(), name="R")
        assert result.integrated.name == "R"


class TestSingleEntityMerge:
    """The reusable per-entity core exposed for incremental engines."""

    def test_merge_pair_matches_relation_merge(self):
        ra, rb = table_ra(), table_rb()
        merger = TupleMerger()
        merged_relation, _ = merger.merge(ra, rb, name="R")
        pair = merger.merge_pair(ra.get(("wok",)), rb.get(("wok",)))
        assert pair == merged_relation.get(("wok",))

    def test_merge_entity_folds_many_sources(self):
        ra, rb = table_ra(), table_rb()
        merger = TupleMerger()
        merged_relation, _ = merger.merge(ra, rb, name="R")
        folded = merger.merge_entity([ra.get(("wok",)), rb.get(("wok",))])
        assert folded == merged_relation.get(("wok",))

    def test_merge_pair_rejects_different_entities(self):
        ra = table_ra()
        with pytest.raises(IntegrationError, match="same entity"):
            TupleMerger().merge_pair(ra.get(("wok",)), ra.get(("garden",)))

    def test_merge_entity_rejects_mixed_keys(self):
        ra = table_ra()
        with pytest.raises(IntegrationError, match="one entity"):
            TupleMerger().merge_entity([ra.get(("wok",)), ra.get(("garden",))])

    def test_merge_entity_needs_a_tuple(self):
        with pytest.raises(IntegrationError, match="at least one"):
            TupleMerger().merge_entity([])

    def test_merge_entity_single_tuple_is_identity(self):
        ra = table_ra()
        folded = TupleMerger().merge_entity([ra.get(("wok",))])
        assert folded == ra.get(("wok",))
