"""Tests for the employee domain: aggregates and evidential methods
co-existing in one merge (the Section 1.3 co-existence claim)."""

from fractions import Fraction

import pytest

from repro.algebra import ThetaPredicate, lit, select
from repro.integration import TupleMerger
from repro.datasets.employees import (
    employee_schema,
    payroll_method_mix,
    table_directory,
    table_payroll,
)


@pytest.fixture
def merged_and_report():
    merger = TupleMerger(methods=payroll_method_mix())
    return merger.merge(table_payroll(), table_directory(), name="staff")


class TestDataset:
    def test_shapes(self):
        payroll, directory = table_payroll(), table_directory()
        assert len(payroll) == 4
        assert len(directory) == 4
        assert payroll.schema.union_compatible(directory.schema)

    def test_salary_is_certain_attribute(self):
        schema = employee_schema()
        assert not schema.attribute("salary").uncertain
        assert schema.attribute("department").uncertain


class TestMethodCoexistence:
    def test_salary_averaged(self, merged_and_report):
        """Dayal's aggregate resolves the numeric conflict."""
        merged, _ = merged_and_report
        ana = merged.get("e01")
        assert ana.evidence("salary").definite_value() == 100000  # (98k+102k)/2
        carla = merged.get("e03")
        assert carla.evidence("salary").definite_value() == Fraction(239000, 2)

    def test_department_dempster_combined(self, merged_and_report):
        """The evidential method pools the org-chart evidence."""
        merged, _ = merged_and_report
        ben = merged.get("e02")
        department = ben.evidence("department")
        # payroll's {eng,ops} meets the directory's eng/ops singletons:
        # belief concentrates on the singletons, eng ahead.
        assert department.mass({"eng"}) > department.mass({"ops"})
        assert department.bel({"eng", "ops"}) > Fraction(9, 10)

    def test_unmatched_employees_pass_through(self, merged_and_report):
        merged, report = merged_and_report
        assert merged.get("e04") is not None  # payroll only
        assert merged.get("e05") is not None  # directory only
        assert ("e04",) in report.left_only
        assert ("e05",) in report.right_only

    def test_membership_pooled(self, merged_and_report):
        merged, _ = merged_and_report
        # e04 appears only in payroll with (0.9, 1): retained as-is.
        assert merged.get("e04").membership.as_tuple() == (Fraction(9, 10), 1)

    def test_conflicts_quantified(self, merged_and_report):
        _, report = merged_and_report
        # carla's department evidence conflicts (hr vs pure sales).
        carla_conflicts = [
            record for record in report.conflicts if record.key == ("e03",)
        ]
        assert any(record.attribute == "department" for record in carla_conflicts)
        assert not report.total_conflicts


class TestQueriesOnMergedStaff:
    def test_theta_predicate_on_level(self, merged_and_report):
        merged, _ = merged_and_report
        seniors = select(merged, ThetaPredicate("level", ">=", lit(4)))
        keys = sorted(t.key()[0] for t in seniors)
        assert "e01" in keys  # ana: level 4-5 for sure
        assert "e02" not in keys  # ben: level <= 3

    def test_salary_comparison(self, merged_and_report):
        merged, _ = merged_and_report
        six_figures = select(merged, ThetaPredicate("salary", ">=", lit(100000)))
        assert sorted(t.key()[0] for t in six_figures) == ["e01", "e03"]
