"""Tests for the paper datasets and the synthetic generators."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OperationError
from repro.ds.frame import OMEGA
from repro.datasets.generators import (
    SyntheticConfig,
    scaled,
    synthetic_pair,
    synthetic_relation,
    synthetic_schema,
)
from repro.datasets.restaurants import (
    RATINGS,
    SPECIALITIES,
    best_dish_domain,
    rating_domain,
    restaurant_schema,
    speciality_domain,
    table_m_a,
    table_m_b,
    table_ra,
    table_rb,
    table_rm_a,
    table_rm_b,
)


class TestRestaurantTables:
    def test_ra_shape(self):
        ra = table_ra()
        assert len(ra) == 6
        assert ra.schema.key_names == ("rname",)
        assert set(ra.schema.uncertain_names) == {
            "speciality",
            "best_dish",
            "rating",
        }

    def test_rb_shape(self):
        rb = table_rb()
        assert len(rb) == 5
        assert rb.schema.union_compatible(table_ra().schema)

    def test_exact_masses_behind_printed_decimals(self):
        """The paper prints 0.33/0.5/0.17 for garden's rating; the exact
        vote fractions are 1/3, 1/2, 1/6."""
        garden = table_ra().get("garden")
        rating = garden.evidence("rating")
        assert rating.mass({"ex"}) == Fraction(1, 3)
        assert rating.mass({"gd"}) == Fraction(1, 2)
        assert rating.mass({"avg"}) == Fraction(1, 6)

    def test_set_valued_focal_element(self):
        garden = table_ra().get("garden")
        assert garden.evidence("best_dish").mass({"d35", "d36"}) == Fraction(1, 2)

    def test_memberships(self):
        ra = table_ra()
        assert ra.get("mehl").membership.as_tuple() == (
            Fraction(1, 2),
            Fraction(1, 2),
        )
        rb = table_rb()
        assert rb.get("mehl").membership.as_tuple() == (Fraction(4, 5), 1)

    def test_shared_certain_attributes_agree(self):
        """Certain columns (street/bldg_no/phone) agree across sources,
        as in the paper's Table 1."""
        ra, rb = table_ra(), table_rb()
        for rb_tuple in rb:
            ra_tuple = ra.get(rb_tuple.key())
            for name in ("street", "bldg_no", "phone"):
                assert ra_tuple.value(name) == rb_tuple.value(name)

    def test_fresh_instances(self):
        assert table_ra() is not table_ra()
        assert table_ra() == table_ra()

    def test_domains(self):
        assert set(SPECIALITIES) == speciality_domain().values
        assert set(RATINGS) == rating_domain().values
        assert len(best_dish_domain().values) == 36

    def test_manager_relations(self):
        ma, mb = table_m_a(), table_m_b()
        assert ma.schema.union_compatible(mb.schema)
        assert ("chen",) in ma and ("chen",) in mb

    def test_relationship_relations_have_composite_keys(self):
        rm = table_rm_a()
        assert rm.schema.key_names == ("rname", "mname")
        assert rm.get(("garden", "chen")) is not None
        assert table_rm_b().schema.union_compatible(rm.schema)


class TestSyntheticConfig:
    def test_defaults_valid(self):
        SyntheticConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_tuples", -1),
            ("overlap", 1.5),
            ("ignorance", -0.1),
            ("conflict", 2),
            ("domain_size", 0),
            ("max_focal", 0),
            ("max_focal_size", 0),
        ],
    )
    def test_invalid_rejected(self, field, value):
        with pytest.raises(OperationError):
            scaled(SyntheticConfig(), **{field: value})

    def test_scaled_helper(self):
        config = scaled(SyntheticConfig(), n_tuples=5)
        assert config.n_tuples == 5


class TestSyntheticGeneration:
    def test_deterministic_in_seed(self):
        a = synthetic_relation(SyntheticConfig(n_tuples=10, seed=7))
        b = synthetic_relation(SyntheticConfig(n_tuples=10, seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a = synthetic_relation(SyntheticConfig(n_tuples=10, seed=7))
        b = synthetic_relation(SyntheticConfig(n_tuples=10, seed=8))
        assert a != b

    def test_sizes(self):
        left, right = synthetic_pair(SyntheticConfig(n_tuples=20, seed=1))
        assert len(left) == 20
        assert len(right) == 20

    def test_overlap_fraction(self):
        config = SyntheticConfig(n_tuples=20, overlap=0.5, seed=1)
        left, right = synthetic_pair(config)
        shared = sum(1 for t in right if t.key() in left)
        assert shared == 10

    def test_zero_overlap(self):
        left, right = synthetic_pair(SyntheticConfig(n_tuples=8, overlap=0, seed=1))
        assert not any(t.key() in left for t in right)

    def test_full_overlap(self):
        left, right = synthetic_pair(SyntheticConfig(n_tuples=8, overlap=1, seed=1))
        assert all(t.key() in left for t in right)

    def test_exact_mode_masses_are_fractions(self):
        relation = synthetic_relation(SyntheticConfig(n_tuples=5, seed=2, exact=True))
        for t in relation:
            assert t.evidence("category").mass_function.is_exact()

    def test_float_mode(self):
        relation = synthetic_relation(
            SyntheticConfig(n_tuples=5, seed=2, exact=False)
        )
        masses = [
            value
            for t in relation
            for _, value in t.evidence("category").items()
        ]
        assert any(isinstance(v, float) for v in masses)

    def test_no_ignorance_when_disabled(self):
        relation = synthetic_relation(
            SyntheticConfig(n_tuples=20, seed=3, ignorance=0)
        )
        for t in relation:
            assert t.evidence("category").ignorance() == 0

    def test_certain_membership_when_disabled(self):
        relation = synthetic_relation(
            SyntheticConfig(n_tuples=20, seed=3, uncertain_membership=0)
        )
        assert all(t.membership.is_certain for t in relation)

    def test_schema_shape(self):
        schema = synthetic_schema(SyntheticConfig(domain_size=4))
        assert schema.key_names == ("id",)
        assert set(schema.uncertain_names) == {"category", "score"}


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=30),
    overlap=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=999),
)
def test_generated_relations_always_valid(n, overlap, seed):
    """Every generated relation satisfies CWA_ER and key uniqueness by
    construction (the constructors would raise otherwise)."""
    config = SyntheticConfig(n_tuples=n, overlap=overlap, seed=seed)
    left, right = synthetic_pair(config)
    assert len(left) == n
    assert len(right) == n
    for t in left:
        assert t.membership.is_supported
