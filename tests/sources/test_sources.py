"""Tests for evidence acquisition: voting, classification, history."""

from fractions import Fraction

import pytest

from repro.errors import IntegrationError
from repro.ds.frame import OMEGA
from repro.sources.voting import Ballot, VotePanel
from repro.sources.classification import ClassificationRule, Classifier
from repro.sources.history import Observation, evidence_from_history
from repro.datasets.restaurants import (
    best_dish_domain,
    rating_domain,
    speciality_domain,
)


class TestBallot:
    def test_value_ballot(self):
        ballot = Ballot.for_value("d1")
        assert ballot.choice == frozenset({"d1"})
        assert ballot.weight == 1

    def test_set_ballot(self):
        ballot = Ballot.for_set({"d35", "d36"})
        assert ballot.choice == frozenset({"d35", "d36"})

    def test_abstention(self):
        assert Ballot.abstain().choice is OMEGA

    def test_weighted(self):
        assert Ballot.for_value("x", weight="3/2").weight == Fraction(3, 2)

    def test_bad_weight(self):
        with pytest.raises(IntegrationError):
            Ballot.for_value("x", weight=0)

    def test_empty_set_ballot(self):
        with pytest.raises(IntegrationError):
            Ballot.for_set(set())


class TestVotePanel:
    def test_paper_section12_best_dish(self):
        """Votes 3/2/1 -> ybest_dish = [d1^0.5, d2^0.33, d3^0.17]."""
        panel = VotePanel(best_dish_domain())
        panel.cast("d1", count=3)
        panel.cast("d2", count=2)
        panel.cast("d3", count=1)
        evidence = panel.to_evidence()
        assert evidence.mass({"d1"}) == Fraction(1, 2)
        assert evidence.mass({"d2"}) == Fraction(1, 3)
        assert evidence.mass({"d3"}) == Fraction(1, 6)

    def test_paper_section12_rating(self):
        """Votes 2 excellent / 4 good -> [ex^0.33, gd^0.67]."""
        panel = VotePanel(rating_domain())
        panel.cast("ex", count=2)
        panel.cast("gd", count=4)
        evidence = panel.to_evidence()
        assert evidence.mass({"ex"}) == Fraction(1, 3)
        assert evidence.mass({"gd"}) == Fraction(2, 3)

    def test_undecided_votes_form_set_focal_elements(self):
        """Three reviewers torn between d35 and d36, three for d31:
        garden's [d31^0.5, {d35,d36}^0.5]."""
        panel = VotePanel(best_dish_domain())
        panel.cast("d31", count=3)
        panel.cast_set({"d35", "d36"}, count=3)
        evidence = panel.to_evidence()
        assert evidence.mass({"d31"}) == Fraction(1, 2)
        assert evidence.mass({"d35", "d36"}) == Fraction(1, 2)

    def test_abstentions_become_ignorance(self):
        panel = VotePanel(rating_domain())
        panel.cast("ex", count=5)
        panel.cast_abstention()
        assert panel.to_evidence().ignorance() == Fraction(1, 6)

    def test_domain_validation(self):
        panel = VotePanel(rating_domain())
        with pytest.raises(IntegrationError, match="outside domain"):
            panel.cast("amazing")

    def test_empty_panel_rejected(self):
        with pytest.raises(IntegrationError):
            VotePanel(rating_domain()).to_evidence()

    def test_tally_and_total(self):
        panel = VotePanel(rating_domain())
        panel.cast("ex", count=2)
        panel.cast_abstention()
        assert panel.total_votes == 3
        assert panel.tally()[frozenset({"ex"})] == 2

    def test_weighted_ballot(self):
        panel = VotePanel(rating_domain())
        panel.cast_ballot(Ballot.for_value("ex", weight=2))
        panel.cast_ballot(Ballot.for_value("gd", weight=1))
        evidence = panel.to_evidence()
        assert evidence.mass({"ex"}) == Fraction(2, 3)


class TestClassifier:
    @pytest.fixture
    def classifier(self):
        return Classifier(
            speciality_domain(),
            [
                ClassificationRule("dim sum", {"ca"}),
                ClassificationRule("pepper", {"hu", "si"}),
                ClassificationRule("pasta", {"it"}),
            ],
        )

    def test_first_match_wins(self, classifier):
        assert classifier.classify("Dim Sum with pepper") == frozenset({"ca"})

    def test_unmatched_is_none(self, classifier):
        assert classifier.classify("Mystery Special") is None

    def test_menu_classification_section21_shape(self):
        """Half cantonese, a third ambiguous hunan/sichuan, rest unknown:
        the wok example's [ca^1/2, {hu,si}^1/3, OMEGA^1/6]."""
        classifier = Classifier(
            speciality_domain(),
            [
                ClassificationRule("dim sum", {"ca"}),
                ClassificationRule("pepper", {"hu", "si"}),
            ],
        )
        menu = (
            ["dim sum %d" % i for i in range(3)]
            + ["pepper dish %d" % i for i in range(2)]
            + ["mystery"]
        )
        evidence = classifier.classify_items(menu)
        assert evidence.mass({"ca"}) == Fraction(1, 2)
        assert evidence.mass({"hu", "si"}) == Fraction(1, 3)
        assert evidence.ignorance() == Fraction(1, 6)

    def test_empty_menu_rejected(self, classifier):
        with pytest.raises(IntegrationError):
            classifier.classify_items([])

    def test_rule_category_validated(self):
        with pytest.raises(IntegrationError, match="outside"):
            Classifier(
                speciality_domain(), [ClassificationRule("sushi", {"japanese"})]
            )

    def test_rule_needs_keyword_and_categories(self):
        with pytest.raises(IntegrationError):
            ClassificationRule("", {"ca"})
        with pytest.raises(IntegrationError):
            ClassificationRule("x", set())


class TestHistory:
    def test_decay_weighting(self):
        history = [
            Observation("gd", 1),
            Observation("gd", 2),
            Observation("ex", 3),
        ]
        evidence = evidence_from_history(history, rating_domain(), decay="1/2")
        # weights: gd 1/4 + 1/2, ex 1 -> normalized ex 4/7.
        assert evidence.mass({"ex"}) == Fraction(4, 7)
        assert evidence.mass({"gd"}) == Fraction(3, 7)

    def test_no_decay_equals_vote_counting(self):
        history = [Observation("ex", i) for i in range(2)] + [
            Observation("gd", i) for i in range(4)
        ]
        evidence = evidence_from_history(history, rating_domain(), decay=1)
        panel = VotePanel(rating_domain())
        panel.cast("ex", count=2)
        panel.cast("gd", count=4)
        assert evidence == panel.to_evidence()

    def test_set_observation(self):
        history = [Observation({"ex", "gd"}, 1)]
        evidence = evidence_from_history(history, rating_domain())
        assert evidence.mass({"ex", "gd"}) == 1

    def test_unknown_observation_is_ignorance(self):
        history = [Observation(None, 1), Observation("ex", 1)]
        evidence = evidence_from_history(history, rating_domain())
        assert evidence.ignorance() == Fraction(1, 2)

    def test_domain_validated(self):
        with pytest.raises(IntegrationError, match="outside domain"):
            evidence_from_history([Observation("bad", 1)], rating_domain())

    def test_empty_history_rejected(self):
        with pytest.raises(IntegrationError):
            evidence_from_history([], rating_domain())

    def test_bad_decay_rejected(self):
        with pytest.raises(IntegrationError):
            evidence_from_history([Observation("ex", 1)], rating_domain(), decay=0)
