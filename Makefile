# Tier-1 verify and friends, each as one command.
#
#   make test           run the test suite (tier-1 gate)
#   make test-parallel  the same suite under a 4-worker thread executor
#   make test-sqlite    the same suite with SQLite as the default backend
#   make test-auto      the same suite under the cost-model-driven
#                       adaptive executor (REPRO_EXECUTOR=auto)
#   make test-remote    the same suite scattered over a 4-worker
#                       loopback socket cluster (repro worker run)
#   make test-remote-sharded  the same cluster with per-worker shard
#                       stores: eligible batches ship entity keys
#   make bench          run the benchmark harness (timings + assertions)
#   make bench-stream   incremental-vs-recompute ingestion benchmark
#   make bench-kernel   kernel-vs-frozenset combination benchmark
#   make bench-parallel federation/stream scaling across worker counts
#   make bench-storage  save/load/point-load per storage backend
#   make bench-adaptive warm-pool dispatch, dirty-shard flush bytes,
#                       auto-vs-serial routing
#   make bench-remote   remote scatter/gather vs serial across local
#                       cluster sizes
#   make lint           ruff check (fails in CI when ruff is absent;
#                       skipped with a notice locally)
#   make lint-analysis  reprolint: invariant static analysis (EXACT,
#                       DETERM, CONC, BACKEND) against the baseline

PYTHON ?= python
export PYTHONPATH := src:.:$(PYTHONPATH)

.PHONY: test test-parallel test-sqlite test-auto test-remote \
	test-remote-sharded bench bench-stream bench-kernel bench-parallel \
	bench-storage bench-adaptive bench-remote lint lint-analysis \
	quickstart

test:
	$(PYTHON) -m pytest -x -q

test-parallel:
	REPRO_EXECUTOR=thread REPRO_WORKERS=4 $(PYTHON) -m pytest -x -q

test-sqlite:
	REPRO_STORAGE=sqlite $(PYTHON) -m pytest -x -q

test-auto:
	REPRO_EXECUTOR=auto REPRO_WORKERS=4 $(PYTHON) -m pytest -x -q

# `repro worker run` forks a 4-daemon loopback cluster, exports
# REPRO_EXECUTOR=remote / REPRO_WORKERS_ADDRS, and tears the cluster
# down when the suite exits.
test-remote:
	$(PYTHON) -m repro.cli worker run -n 4 -- $(PYTHON) -m pytest -x -q

# Same cluster, but every daemon owns a temporary SQLite shard store:
# batches that can be described as entity keys scatter key lists and
# workers point-load their rows locally (tuple shipping on fallback).
test-remote-sharded:
	$(PYTHON) -m repro.cli worker run -n 4 --store -- \
		$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-only

bench-stream:
	$(PYTHON) -m pytest benchmarks/bench_stream_ingest.py -q

bench-kernel:
	$(PYTHON) -m pytest benchmarks/bench_kernel_combination.py -q

bench-parallel:
	$(PYTHON) -m pytest benchmarks/bench_parallel_integration.py -q -s

bench-storage:
	$(PYTHON) -m pytest benchmarks/bench_storage_backends.py -q -s

bench-adaptive:
	$(PYTHON) -m pytest benchmarks/bench_adaptive_runtime.py -q -s

bench-remote:
	$(PYTHON) -m pytest benchmarks/bench_remote_exec.py -q -s

# Real ruff findings always fail; only a *missing* ruff is forgiven,
# and only outside CI (GitHub Actions exports CI=true).
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	elif [ -n "$$CI" ]; then \
		echo "ruff not installed but CI is set; failing" >&2; exit 1; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

lint-analysis:
	$(PYTHON) -m repro.analysis --baseline analysis-baseline.json src

quickstart:
	$(PYTHON) examples/quickstart.py
